//! The `Explore` and `MinMem` exact algorithms (Algorithms 3 and 4 of the
//! paper) — the paper's primary contribution.
//!
//! `Explore(T, i, M)` systematically traverses the subtree rooted at `i`
//! using at most `M` units of memory and returns the *best reachable cut*:
//! the set of still-unprocessed nodes whose input files occupy the least
//! total memory among all states reachable with `M`.  When the whole subtree
//! cannot be processed it also reports the *memory peak*: the smallest amount
//! of memory that would allow visiting at least one additional node.
//!
//! `MinMem(T)` solves the MinMemory problem exactly by repeatedly calling
//! `Explore` on the root, starting from the trivial lower bound
//! `max_i MemReq(i)` and raising the available memory to the reported peak
//! until the whole tree is processed.  The overall complexity is `O(p²)`.
//!
//! The implementation mirrors the pseudo-code of the paper; in particular the
//! state of a partially explored tree (cut + traversal prefix) is carried
//! from one `MinMem` iteration to the next so processed nodes are never
//! executed twice.

use crate::traversal::Traversal;
use crate::tree::{NodeId, Size, Tree, INFINITE};
use crate::TraversalResult;

/// Outcome of one call to [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// `M_i` in the paper: total size of the input files of the returned cut
    /// (0 when the subtree was fully processed, [`INFINITE`] when the root of
    /// the explored subtree itself could not be executed).
    pub mem: Size,
    /// `L_i`: the best reachable cut (unprocessed nodes whose input files are
    /// resident).  Empty when the subtree was fully processed or when its
    /// root could not be executed.
    pub cut: Vec<NodeId>,
    /// Memory peak of each cut node, parallel to `cut`: the minimum memory
    /// required to visit a new node inside that cut node's subtree.
    pub cut_peaks: Vec<Size>,
    /// `Tr_i`: the nodes executed during the exploration, in execution order.
    pub traversal: Vec<NodeId>,
    /// `M_i^peak`: minimum memory required to visit one more node of the
    /// subtree ([`INFINITE`] when the subtree was fully processed).
    pub peak: Size,
}

/// Saved state passed back to [`explore`] by [`min_mem`] so that nodes
/// processed in earlier iterations are not executed again.
#[derive(Debug, Clone, Default)]
pub struct ExploreState {
    /// Current cut (`L_init` in the paper).
    pub cut: Vec<NodeId>,
    /// Peak associated with each cut node (computed by the previous call).
    pub cut_peaks: Vec<Size>,
    /// Traversal prefix (`Tr_init`): nodes already executed.
    pub traversal: Vec<NodeId>,
}

impl ExploreState {
    fn is_empty(&self) -> bool {
        self.cut.is_empty() && self.traversal.is_empty()
    }
}

fn saturating_add(a: Size, b: Size) -> Size {
    a.saturating_add(b)
}

/// One suspended `Explore` activation of the explicit-stack driver.
///
/// The recursive formulation of Algorithm 3 recurses along the height of the
/// tree, which reaches the node count on chain-like assembly trees (RCM and
/// natural orderings routinely produce 10⁵-deep chains) and overflows the
/// call stack.  [`explore`] therefore runs the same computation on a heap
/// stack of these frames.
///
/// A frame owns no buffers: the per-activation data (current cut, the cut
/// being consumed by the in-progress pass, the executed nodes) lives in
/// shared flat arenas owned by the driver, of which each frame marks its
/// start offset.  The regions are stack-disciplined — a child frame's
/// regions sit on top of its parent's, and integration either *keeps* the
/// child's cut region in place (it becomes the top of the parent's cut) or
/// truncates it — so a million-node exploration performs O(1) heap
/// allocations instead of several per node.
#[derive(Debug, Clone, Copy, Default)]
struct Frame {
    avail: Size,
    /// Start of this frame's cut region in the shared cut arena.
    cut_start: usize,
    /// Start of this frame's pass region in the shared old-cut arena.
    old_start: usize,
    /// Total input-file size of this frame's cut region.
    cut_file_sum: Size,
    /// Length of the shared traversal buffer when this frame was entered;
    /// used to discard the subtree's executions if its cut is rejected.
    traversal_mark: usize,
    /// Next absolute index into the old-cut arena the pass has to look at.
    idx: usize,
    /// `cut_file_sum` frozen at the start of the pass (the paper's line 15
    /// evaluates candidates against the cut as it was when the pass began).
    pass_sum: Size,
    first_pass: bool,
    in_pass: bool,
}

/// The shared buffers of the explicit-stack driver.
#[derive(Debug, Default)]
struct Arenas {
    /// Current cuts of all live frames, bottom frame first.
    cut_nodes: Vec<NodeId>,
    cut_peaks: Vec<Size>,
    /// In-progress pass inputs of all live frames, bottom frame first.
    old_nodes: Vec<NodeId>,
    old_peaks: Vec<Size>,
    /// Executed nodes (`Tr` in the paper), in execution order.
    traversal: Vec<NodeId>,
}

impl Arenas {
    /// Open a fresh frame for `node` (lines 6–11: cut = children, peaks =
    /// their `MemReq`) on top of the arenas; the node's own execution goes
    /// straight into the shared traversal buffer.
    fn open_frame(&mut self, tree: &Tree, node: NodeId, avail: Size) -> Frame {
        let frame = Frame {
            avail,
            cut_start: self.cut_nodes.len(),
            old_start: self.old_nodes.len(),
            cut_file_sum: tree.children_file_sum(node),
            traversal_mark: self.traversal.len(),
            idx: 0,
            pass_sum: 0,
            first_pass: true,
            in_pass: false,
        };
        self.cut_nodes.extend_from_slice(tree.children(node));
        // Until a child has been explored, the only safe lower bound on the
        // memory needed to advance inside it is its own MemReq.
        self.cut_peaks
            .extend(tree.children(node).iter().map(|&c| tree.mem_req(c)));
        self.traversal.push(node);
        frame
    }
}

#[inline]
fn is_candidate(tree: &Tree, avail: Size, j: NodeId, peak_j: Size, sum: Size) -> bool {
    avail - (sum - tree.f(j)) >= peak_j
}

/// Lines 20–22 for a finished frame: the `M_i^peak` value reported upward.
fn frame_peak(tree: &Tree, frame: &Frame, arenas: &Arenas) -> Size {
    arenas.cut_nodes[frame.cut_start..]
        .iter()
        .zip(arenas.cut_peaks[frame.cut_start..].iter())
        .map(|(&j, &peak_j)| saturating_add(peak_j, frame.cut_file_sum - tree.f(j)))
        .min()
        .unwrap_or(INFINITE)
}

/// Algorithm 3 of the paper: explore the subtree rooted at `node` with
/// `avail` units of memory (the input file of `node` counts against this
/// budget) and return the minimum-memory reachable cut.
///
/// `init` carries the cut and traversal of a previous exploration of the same
/// subtree (used by [`min_mem`] when it restarts the root exploration with
/// more memory); pass `None` for a fresh exploration.
///
/// The exploration is iterative (explicit heap stack), so arbitrarily deep
/// trees — 10⁵-node chains and beyond — are handled without overflowing the
/// call stack.
pub fn explore(
    tree: &Tree,
    node: NodeId,
    avail: Size,
    init: Option<ExploreState>,
) -> ExploreOutcome {
    let has_init = init.as_ref().map(|s| !s.is_empty()).unwrap_or(false);

    if !has_init {
        // Lines 1–5: try to execute `node` itself.
        let requirement = tree.mem_req(node);
        if requirement > avail {
            return ExploreOutcome {
                mem: INFINITE,
                cut: Vec::new(),
                cut_peaks: Vec::new(),
                traversal: Vec::new(),
                peak: requirement,
            };
        }
        if tree.is_leaf(node) {
            return ExploreOutcome {
                mem: 0,
                cut: Vec::new(),
                cut_peaks: Vec::new(),
                traversal: vec![node],
                peak: INFINITE,
            };
        }
    }

    let mut arenas = Arenas::default();

    // The root frame: either resumed from a previous MinMem iteration (lines
    // 6–8) or freshly initialised from the children (lines 9–11).
    let root_frame = match init {
        Some(state) if !state.is_empty() => {
            debug_assert_eq!(state.cut.len(), state.cut_peaks.len());
            let cut_file_sum = state.cut.iter().map(|&c| tree.f(c)).sum();
            arenas.cut_nodes = state.cut;
            arenas.cut_peaks = state.cut_peaks;
            arenas.traversal = state.traversal;
            Frame {
                avail,
                cut_start: 0,
                old_start: 0,
                cut_file_sum,
                traversal_mark: 0,
                idx: 0,
                pass_sum: 0,
                first_pass: true,
                in_pass: false,
            }
        }
        _ => arenas.open_frame(tree, node, avail),
    };

    let mut stack: Vec<Frame> = vec![root_frame];

    // Lines 12–19, iteratively: each pass of a frame corresponds to one
    // evaluation of the candidate set (line 19 in the paper); within a pass
    // the cut is rebuilt while candidates are explored with the *current*
    // amount of free memory, exactly as line 15 uses the current cut.  The
    // total file size of the cut is maintained incrementally so each
    // candidate costs O(1) besides its own (pushed) exploration.  On the
    // first pass every initial cut node is a candidate (line 12).
    'driver: loop {
        let frame = stack.last_mut().expect("stack is never empty here");

        if !frame.in_pass {
            let start_pass = frame.first_pass
                || arenas.cut_nodes[frame.cut_start..]
                    .iter()
                    .zip(arenas.cut_peaks[frame.cut_start..].iter())
                    .any(|(&j, &peak_j)| {
                        is_candidate(tree, frame.avail, j, peak_j, frame.cut_file_sum)
                    });
            if !start_pass {
                // This frame is done: report it upward (lines 20–22).
                let finished = stack.pop().expect("just peeked");
                let peak = frame_peak(tree, &finished, &arenas);
                match stack.last_mut() {
                    Some(parent) => {
                        // Lines 16–18: merge the child's result.  The child's
                        // cut and executions already sit on top of the
                        // parent's arena regions, so *accepting* them is free
                        // — they simply become part of the parent's regions —
                        // and rejecting truncates.  This is what makes a full
                        // exploration of a p-node chain O(p) instead of the
                        // O(p²) that per-frame concatenation (the recursive
                        // formulation) costs.
                        let j = arenas.old_nodes[parent.idx];
                        if finished.cut_file_sum <= tree.f(j) {
                            // Replace `j` by the child's cut, kept in place.
                            parent.cut_file_sum += finished.cut_file_sum - tree.f(j);
                        } else {
                            // Keep `j` in the cut but remember how much
                            // memory its subtree needs to make progress;
                            // discard the child's executions and cut.
                            arenas.cut_nodes.truncate(finished.cut_start);
                            arenas.cut_peaks.truncate(finished.cut_start);
                            arenas.traversal.truncate(finished.traversal_mark);
                            arenas.cut_nodes.push(j);
                            arenas.cut_peaks.push(peak);
                        }
                        parent.idx += 1;
                        continue 'driver;
                    }
                    None => {
                        return ExploreOutcome {
                            mem: finished.cut_file_sum,
                            cut: arenas.cut_nodes.split_off(finished.cut_start),
                            cut_peaks: arenas.cut_peaks.split_off(finished.cut_start),
                            traversal: arenas.traversal,
                            peak,
                        };
                    }
                }
            }
            // Start a pass: move this frame's cut region to the top of the
            // old-cut arena and rebuild the cut region from scratch.
            frame.pass_sum = frame.cut_file_sum;
            frame.old_start = arenas.old_nodes.len();
            frame.idx = frame.old_start;
            arenas
                .old_nodes
                .extend_from_slice(&arenas.cut_nodes[frame.cut_start..]);
            arenas
                .old_peaks
                .extend_from_slice(&arenas.cut_peaks[frame.cut_start..]);
            arenas.cut_nodes.truncate(frame.cut_start);
            arenas.cut_peaks.truncate(frame.cut_start);
            frame.in_pass = true;
        }

        // A live frame's pass region is the top of the old-cut arena (child
        // frames push and fully truncate their regions before control
        // returns), so the region ends at the arena's current length.
        while frame.idx < arenas.old_nodes.len() {
            let j = arenas.old_nodes[frame.idx];
            let peak_j = arenas.old_peaks[frame.idx];
            let candidate =
                frame.first_pass || is_candidate(tree, frame.avail, j, peak_j, frame.pass_sum);
            if !candidate {
                arenas.cut_nodes.push(j);
                arenas.cut_peaks.push(peak_j);
                frame.idx += 1;
                continue;
            }
            let avail_j = frame.avail - (frame.cut_file_sum - tree.f(j));
            // Inline the base cases of the recursion (lines 1–5 for `j`), so
            // leaves and too-tight subtrees never open a frame.
            let requirement = tree.mem_req(j);
            if requirement > avail_j {
                arenas.cut_nodes.push(j);
                arenas.cut_peaks.push(requirement);
                frame.idx += 1;
                continue;
            }
            if tree.is_leaf(j) {
                frame.cut_file_sum -= tree.f(j);
                arenas.traversal.push(j);
                frame.idx += 1;
                continue;
            }
            // Open a child frame; integration happens when it finishes.
            let child = arenas.open_frame(tree, j, avail_j);
            stack.push(child);
            continue 'driver;
        }

        // Pass finished (line 19): drop the pass region and re-evaluate the
        // candidate set.
        arenas.old_nodes.truncate(frame.old_start);
        arenas.old_peaks.truncate(frame.old_start);
        frame.first_pass = false;
        frame.in_pass = false;
    }
}

/// Result of [`min_mem`]: the optimal peak together with the traversal that
/// achieves it and the number of `Explore` restarts performed (a useful
/// measure of the practical cost of the algorithm).
#[derive(Debug, Clone)]
pub struct MinMemResult {
    /// The optimal traversal found by the algorithm.
    pub traversal: Traversal,
    /// The minimum memory for an in-core traversal of the tree.
    pub peak: Size,
    /// Number of top-level `Explore` calls performed by `MinMem`.
    pub iterations: usize,
}

impl From<MinMemResult> for TraversalResult {
    fn from(value: MinMemResult) -> Self {
        TraversalResult {
            traversal: value.traversal,
            peak: value.peak,
        }
    }
}

/// Algorithm 4 of the paper: compute the minimum memory required to process
/// the whole tree in core, along with a traversal achieving it.
///
/// ```
/// use treemem::{TreeBuilder, minmem::min_mem};
/// let mut b = TreeBuilder::new();
/// let root = b.add_root(0, 0);
/// let a = b.add_child(root, 2, 0);
/// b.add_child(a, 10, 0);
/// let c = b.add_child(root, 3, 0);
/// b.add_child(c, 4, 0);
/// let tree = b.build().unwrap();
/// let result = min_mem(&tree);
/// assert_eq!(result.peak, result.traversal.peak_memory(&tree).unwrap());
/// ```
pub fn min_mem(tree: &Tree) -> MinMemResult {
    let mut target = tree.max_mem_req();
    let mut state = ExploreState::default();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let avail = target;
        let outcome = explore(tree, tree.root(), avail, Some(state));
        if outcome.peak == INFINITE {
            debug_assert_eq!(
                outcome.traversal.len(),
                tree.len(),
                "exploration must cover the tree"
            );
            let traversal = Traversal::new(outcome.traversal);
            debug_assert!(traversal.check_in_core(tree, avail).is_ok());
            let peak = traversal
                .peak_memory(tree)
                .expect("MinMem produced an invalid traversal");
            return MinMemResult {
                traversal,
                peak,
                iterations,
            };
        }
        debug_assert!(
            outcome.peak > avail,
            "Explore must report a peak larger than the memory it was given"
        );
        target = outcome.peak;
        state = ExploreState {
            cut: outcome.cut,
            cut_peaks: outcome.cut_peaks,
            traversal: outcome.traversal,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postorder::best_postorder;
    use crate::tree::TreeBuilder;

    #[test]
    fn single_node_and_chain() {
        let mut b = TreeBuilder::new();
        b.add_root(3, 4);
        let tree = b.build().unwrap();
        let res = min_mem(&tree);
        assert_eq!(res.peak, 7);
        assert_eq!(res.traversal.order(), &[0]);

        let mut b = TreeBuilder::new();
        let mut prev = b.add_root(1, 0);
        for f in [5, 2, 9, 3] {
            prev = b.add_child(prev, f, 0);
        }
        let tree = b.build().unwrap();
        let res = min_mem(&tree);
        assert_eq!(res.peak, tree.max_mem_req());
    }

    #[test]
    fn explore_reports_peak_when_memory_is_too_small() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(5, 0);
        b.add_child(r, 7, 0);
        let tree = b.build().unwrap();
        let outcome = explore(&tree, r, 5, None);
        assert_eq!(outcome.mem, crate::tree::INFINITE);
        assert_eq!(outcome.peak, 12);
        assert!(outcome.traversal.is_empty());
    }

    #[test]
    fn explore_with_enough_memory_processes_everything() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(1, 0);
        let a = b.add_child(r, 2, 0);
        b.add_child(a, 3, 0);
        b.add_child(r, 4, 0);
        let tree = b.build().unwrap();
        let outcome = explore(&tree, r, 100, None);
        assert_eq!(outcome.mem, 0);
        assert!(outcome.cut.is_empty());
        assert_eq!(outcome.peak, crate::tree::INFINITE);
        assert_eq!(outcome.traversal.len(), tree.len());
    }

    #[test]
    fn min_mem_beats_postorder_on_the_harpoon() {
        let tree = crate::gadgets::harpoon(4, 400, 1);
        let opt = min_mem(&tree);
        let po = best_postorder(&tree);
        // Optimal alternates between branches: 400 + 4*1; postorder is stuck
        // with (b-1) files of size 100: 400 + 1 + 3*100.
        assert_eq!(opt.peak, 404);
        assert_eq!(po.peak, 701);
        assert!(opt.peak < po.peak);
        assert!(opt.traversal.check_in_core(&tree, opt.peak).is_ok());
    }

    #[test]
    fn min_mem_is_never_worse_than_postorder() {
        for branches in 2..6 {
            let mut b = TreeBuilder::new();
            let r = b.add_root(0, 0);
            for k in 0..branches {
                let c = b.add_child(r, (k as Size) + 1, 1);
                let d = b.add_child(c, 10 * ((branches - k) as Size), 2);
                b.add_child(d, 3, 0);
            }
            let tree = b.build().unwrap();
            let opt = min_mem(&tree);
            let po = best_postorder(&tree);
            assert!(opt.peak <= po.peak, "branches={branches}");
            assert_eq!(opt.peak, opt.traversal.peak_memory(&tree).unwrap());
        }
    }

    #[test]
    fn iterations_are_reported() {
        let tree = crate::gadgets::harpoon(3, 300, 1);
        let res = min_mem(&tree);
        assert!(res.iterations >= 1);
    }
}
