//! The `Explore` and `MinMem` exact algorithms (Algorithms 3 and 4 of the
//! paper) — the paper's primary contribution.
//!
//! `Explore(T, i, M)` systematically traverses the subtree rooted at `i`
//! using at most `M` units of memory and returns the *best reachable cut*:
//! the set of still-unprocessed nodes whose input files occupy the least
//! total memory among all states reachable with `M`.  When the whole subtree
//! cannot be processed it also reports the *memory peak*: the smallest amount
//! of memory that would allow visiting at least one additional node.
//!
//! `MinMem(T)` solves the MinMemory problem exactly by repeatedly calling
//! `Explore` on the root, starting from the trivial lower bound
//! `max_i MemReq(i)` and raising the available memory to the reported peak
//! until the whole tree is processed.  The overall complexity is `O(p²)`.
//!
//! The implementation mirrors the pseudo-code of the paper; in particular the
//! state of a partially explored tree (cut + traversal prefix) is carried
//! from one `MinMem` iteration to the next so processed nodes are never
//! executed twice.

use crate::traversal::Traversal;
use crate::tree::{NodeId, Size, Tree, INFINITE};
use crate::TraversalResult;

/// Outcome of one call to [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// `M_i` in the paper: total size of the input files of the returned cut
    /// (0 when the subtree was fully processed, [`INFINITE`] when the root of
    /// the explored subtree itself could not be executed).
    pub mem: Size,
    /// `L_i`: the best reachable cut (unprocessed nodes whose input files are
    /// resident).  Empty when the subtree was fully processed or when its
    /// root could not be executed.
    pub cut: Vec<NodeId>,
    /// Memory peak of each cut node, parallel to `cut`: the minimum memory
    /// required to visit a new node inside that cut node's subtree.
    pub cut_peaks: Vec<Size>,
    /// `Tr_i`: the nodes executed during the exploration, in execution order.
    pub traversal: Vec<NodeId>,
    /// `M_i^peak`: minimum memory required to visit one more node of the
    /// subtree ([`INFINITE`] when the subtree was fully processed).
    pub peak: Size,
}

/// Saved state passed back to [`explore`] by [`min_mem`] so that nodes
/// processed in earlier iterations are not executed again.
#[derive(Debug, Clone, Default)]
pub struct ExploreState {
    /// Current cut (`L_init` in the paper).
    pub cut: Vec<NodeId>,
    /// Peak associated with each cut node (computed by the previous call).
    pub cut_peaks: Vec<Size>,
    /// Traversal prefix (`Tr_init`): nodes already executed.
    pub traversal: Vec<NodeId>,
}

impl ExploreState {
    fn is_empty(&self) -> bool {
        self.cut.is_empty() && self.traversal.is_empty()
    }
}

fn saturating_add(a: Size, b: Size) -> Size {
    a.saturating_add(b)
}

/// Algorithm 3 of the paper: explore the subtree rooted at `node` with
/// `avail` units of memory (the input file of `node` counts against this
/// budget) and return the minimum-memory reachable cut.
///
/// `init` carries the cut and traversal of a previous exploration of the same
/// subtree (used by [`min_mem`] when it restarts the root exploration with
/// more memory); pass `None` for a fresh exploration.
pub fn explore(
    tree: &Tree,
    node: NodeId,
    avail: Size,
    init: Option<ExploreState>,
) -> ExploreOutcome {
    let has_init = init.as_ref().map(|s| !s.is_empty()).unwrap_or(false);

    if !has_init {
        // Lines 1–5: try to execute `node` itself.
        let requirement = tree.mem_req(node);
        if requirement > avail {
            return ExploreOutcome {
                mem: INFINITE,
                cut: Vec::new(),
                cut_peaks: Vec::new(),
                traversal: Vec::new(),
                peak: requirement,
            };
        }
        if tree.is_leaf(node) {
            return ExploreOutcome {
                mem: 0,
                cut: Vec::new(),
                cut_peaks: Vec::new(),
                traversal: vec![node],
                peak: INFINITE,
            };
        }
    }

    // Lines 6–11: initialise the cut, its cached peaks and the traversal.
    let (mut cut, mut cut_peaks, mut traversal) = match init {
        Some(state) if !state.is_empty() => {
            debug_assert_eq!(state.cut.len(), state.cut_peaks.len());
            (state.cut, state.cut_peaks, state.traversal)
        }
        _ => {
            let children: Vec<NodeId> = tree.children(node).to_vec();
            // Until a child has been explored, the only safe lower bound on
            // the memory needed to advance inside it is its own MemReq.
            let peaks: Vec<Size> = children.iter().map(|&c| tree.mem_req(c)).collect();
            (children, peaks, vec![node])
        }
    };

    // Lines 12–19: iteratively improve the cut.  Each pass of the outer loop
    // corresponds to one evaluation of the candidate set (line 19 in the
    // paper); within a pass the cut is rebuilt while candidates are explored
    // with the *current* amount of free memory, exactly as line 15 uses the
    // current cut.  The total file size of the cut is maintained
    // incrementally so each candidate costs O(1) besides its own recursive
    // exploration.  On the first pass every initial cut node is a candidate
    // (line 12).
    let mut cut_file_sum: Size = cut.iter().map(|&c| tree.f(c)).sum();
    let mut first_pass = true;
    loop {
        let is_candidate =
            |j: NodeId, peak_j: Size, sum: Size| -> bool { avail - (sum - tree.f(j)) >= peak_j };
        if !first_pass
            && !cut
                .iter()
                .zip(cut_peaks.iter())
                .any(|(&j, &peak_j)| is_candidate(j, peak_j, cut_file_sum))
        {
            break;
        }
        let pass_sum = cut_file_sum;
        let old_cut = std::mem::take(&mut cut);
        let old_peaks = std::mem::take(&mut cut_peaks);
        for (j, peak_j) in old_cut.into_iter().zip(old_peaks) {
            let candidate = first_pass || is_candidate(j, peak_j, pass_sum);
            if !candidate {
                cut.push(j);
                cut_peaks.push(peak_j);
                continue;
            }
            let avail_j = avail - (cut_file_sum - tree.f(j));
            let outcome = explore(tree, j, avail_j, None);
            if outcome.mem <= tree.f(j) {
                // Lines 16–18: replace `j` by its own cut and keep the
                // traversal that reaches it.
                cut_file_sum += outcome.mem - tree.f(j);
                cut.extend_from_slice(&outcome.cut);
                cut_peaks.extend_from_slice(&outcome.cut_peaks);
                traversal.extend_from_slice(&outcome.traversal);
            } else {
                // Keep `j` in the cut but remember how much memory its
                // subtree needs to make progress.
                cut.push(j);
                cut_peaks.push(outcome.peak);
            }
        }
        first_pass = false;
    }

    // Lines 20–22.
    let mem: Size = cut_file_sum;
    let peak = cut
        .iter()
        .zip(cut_peaks.iter())
        .map(|(&j, &peak_j)| saturating_add(peak_j, cut_file_sum - tree.f(j)))
        .min()
        .unwrap_or(INFINITE);
    ExploreOutcome {
        mem,
        cut,
        cut_peaks,
        traversal,
        peak,
    }
}

/// Result of [`min_mem`]: the optimal peak together with the traversal that
/// achieves it and the number of `Explore` restarts performed (a useful
/// measure of the practical cost of the algorithm).
#[derive(Debug, Clone)]
pub struct MinMemResult {
    /// The optimal traversal found by the algorithm.
    pub traversal: Traversal,
    /// The minimum memory for an in-core traversal of the tree.
    pub peak: Size,
    /// Number of top-level `Explore` calls performed by `MinMem`.
    pub iterations: usize,
}

impl From<MinMemResult> for TraversalResult {
    fn from(value: MinMemResult) -> Self {
        TraversalResult {
            traversal: value.traversal,
            peak: value.peak,
        }
    }
}

/// Algorithm 4 of the paper: compute the minimum memory required to process
/// the whole tree in core, along with a traversal achieving it.
///
/// ```
/// use treemem::{TreeBuilder, minmem::min_mem};
/// let mut b = TreeBuilder::new();
/// let root = b.add_root(0, 0);
/// let a = b.add_child(root, 2, 0);
/// b.add_child(a, 10, 0);
/// let c = b.add_child(root, 3, 0);
/// b.add_child(c, 4, 0);
/// let tree = b.build().unwrap();
/// let result = min_mem(&tree);
/// assert_eq!(result.peak, result.traversal.peak_memory(&tree).unwrap());
/// ```
pub fn min_mem(tree: &Tree) -> MinMemResult {
    let mut target = tree.max_mem_req();
    let mut state = ExploreState::default();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let avail = target;
        let outcome = explore(tree, tree.root(), avail, Some(state));
        if outcome.peak == INFINITE {
            debug_assert_eq!(
                outcome.traversal.len(),
                tree.len(),
                "exploration must cover the tree"
            );
            let traversal = Traversal::new(outcome.traversal);
            debug_assert!(traversal.check_in_core(tree, avail).is_ok());
            let peak = traversal
                .peak_memory(tree)
                .expect("MinMem produced an invalid traversal");
            return MinMemResult {
                traversal,
                peak,
                iterations,
            };
        }
        debug_assert!(
            outcome.peak > avail,
            "Explore must report a peak larger than the memory it was given"
        );
        target = outcome.peak;
        state = ExploreState {
            cut: outcome.cut,
            cut_peaks: outcome.cut_peaks,
            traversal: outcome.traversal,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postorder::best_postorder;
    use crate::tree::TreeBuilder;

    #[test]
    fn single_node_and_chain() {
        let mut b = TreeBuilder::new();
        b.add_root(3, 4);
        let tree = b.build().unwrap();
        let res = min_mem(&tree);
        assert_eq!(res.peak, 7);
        assert_eq!(res.traversal.order(), &[0]);

        let mut b = TreeBuilder::new();
        let mut prev = b.add_root(1, 0);
        for f in [5, 2, 9, 3] {
            prev = b.add_child(prev, f, 0);
        }
        let tree = b.build().unwrap();
        let res = min_mem(&tree);
        assert_eq!(res.peak, tree.max_mem_req());
    }

    #[test]
    fn explore_reports_peak_when_memory_is_too_small() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(5, 0);
        b.add_child(r, 7, 0);
        let tree = b.build().unwrap();
        let outcome = explore(&tree, r, 5, None);
        assert_eq!(outcome.mem, crate::tree::INFINITE);
        assert_eq!(outcome.peak, 12);
        assert!(outcome.traversal.is_empty());
    }

    #[test]
    fn explore_with_enough_memory_processes_everything() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(1, 0);
        let a = b.add_child(r, 2, 0);
        b.add_child(a, 3, 0);
        b.add_child(r, 4, 0);
        let tree = b.build().unwrap();
        let outcome = explore(&tree, r, 100, None);
        assert_eq!(outcome.mem, 0);
        assert!(outcome.cut.is_empty());
        assert_eq!(outcome.peak, crate::tree::INFINITE);
        assert_eq!(outcome.traversal.len(), tree.len());
    }

    #[test]
    fn min_mem_beats_postorder_on_the_harpoon() {
        let tree = crate::gadgets::harpoon(4, 400, 1);
        let opt = min_mem(&tree);
        let po = best_postorder(&tree);
        // Optimal alternates between branches: 400 + 4*1; postorder is stuck
        // with (b-1) files of size 100: 400 + 1 + 3*100.
        assert_eq!(opt.peak, 404);
        assert_eq!(po.peak, 701);
        assert!(opt.peak < po.peak);
        assert!(opt.traversal.check_in_core(&tree, opt.peak).is_ok());
    }

    #[test]
    fn min_mem_is_never_worse_than_postorder() {
        for branches in 2..6 {
            let mut b = TreeBuilder::new();
            let r = b.add_root(0, 0);
            for k in 0..branches {
                let c = b.add_child(r, (k as Size) + 1, 1);
                let d = b.add_child(c, 10 * ((branches - k) as Size), 2);
                b.add_child(d, 3, 0);
            }
            let tree = b.build().unwrap();
            let opt = min_mem(&tree);
            let po = best_postorder(&tree);
            assert!(opt.peak <= po.peak, "branches={branches}");
            assert_eq!(opt.peak, opt.traversal.peak_memory(&tree).unwrap());
        }
    }

    #[test]
    fn iterations_are_reported() {
        let tree = crate::gadgets::harpoon(3, 300, 1);
        let res = min_mem(&tree);
        assert!(res.iterations >= 1);
    }
}
