//! Error types for tree construction and traversal validation.

use std::fmt;

use crate::tree::{NodeId, Size};

/// Errors raised while building or validating a [`crate::Tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The tree has no nodes.
    Empty,
    /// More than one node has no parent.
    MultipleRoots(NodeId, NodeId),
    /// No node without a parent was found (the parent pointers contain a cycle).
    NoRoot,
    /// A parent index refers to a node that does not exist.
    InvalidParent { node: NodeId, parent: NodeId },
    /// A node is its own ancestor.
    Cycle(NodeId),
    /// A file size is negative.
    NegativeFileSize { node: NodeId, size: Size },
    /// Mismatched input lengths (parents / file sizes / execution sizes).
    LengthMismatch {
        parents: usize,
        files: usize,
        weights: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(fmt, "tree has no nodes"),
            TreeError::MultipleRoots(a, b) => {
                write!(fmt, "tree has multiple roots (nodes {a} and {b})")
            }
            TreeError::NoRoot => write!(fmt, "tree has no root (cycle in parent pointers)"),
            TreeError::InvalidParent { node, parent } => {
                write!(fmt, "node {node} refers to nonexistent parent {parent}")
            }
            TreeError::Cycle(node) => write!(fmt, "node {node} is its own ancestor"),
            TreeError::NegativeFileSize { node, size } => {
                write!(fmt, "node {node} has negative input-file size {size}")
            }
            TreeError::LengthMismatch {
                parents,
                files,
                weights,
            } => write!(
                fmt,
                "length mismatch: {parents} parents, {files} file sizes, {weights} execution sizes"
            ),
        }
    }
}

impl std::error::Error for TreeError {}

/// Errors raised when checking a traversal (Algorithm 1 / Algorithm 2 of the
/// paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraversalError {
    /// The traversal does not contain every node exactly once.
    NotAPermutation,
    /// A node is scheduled before its parent.
    PrecedenceViolation { node: NodeId, parent: NodeId },
    /// The memory limit is exceeded at the given step.
    OutOfMemory {
        step: usize,
        node: NodeId,
        required: Size,
        available: Size,
    },
    /// The traversal length does not match the number of tree nodes.
    WrongLength { expected: usize, found: usize },
    /// An I/O operation refers to a file that has not been produced yet.
    FileNotProduced { node: NodeId },
    /// An I/O operation evicts a file that is not resident.
    FileNotResident { node: NodeId },
}

impl fmt::Display for TraversalError {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraversalError::NotAPermutation => {
                write!(fmt, "traversal is not a permutation of the tree nodes")
            }
            TraversalError::PrecedenceViolation { node, parent } => {
                write!(fmt, "node {node} scheduled before its parent {parent}")
            }
            TraversalError::OutOfMemory { step, node, required, available } => write!(
                fmt,
                "out of memory at step {step}: node {node} requires {required} but only {available} is available"
            ),
            TraversalError::WrongLength { expected, found } => {
                write!(fmt, "traversal has {found} entries, tree has {expected} nodes")
            }
            TraversalError::FileNotProduced { node } => {
                write!(fmt, "file of node {node} written to secondary memory before being produced")
            }
            TraversalError::FileNotResident { node } => {
                write!(fmt, "file of node {node} evicted while not resident in main memory")
            }
        }
    }
}

impl std::error::Error for TraversalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TreeError::InvalidParent {
            node: 3,
            parent: 17,
        };
        assert!(err.to_string().contains("17"));
        let err = TraversalError::OutOfMemory {
            step: 2,
            node: 5,
            required: 10,
            available: 3,
        };
        let text = err.to_string();
        assert!(text.contains("step 2") && text.contains("10") && text.contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TreeError::Empty, TreeError::Empty);
        assert_ne!(
            TraversalError::NotAPermutation,
            TraversalError::WrongLength {
                expected: 1,
                found: 2
            }
        );
    }
}
