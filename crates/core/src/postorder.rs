//! Best postorder traversal (Liu 1986), Section IV-A of the paper.
//!
//! A *postorder* traversal processes, after each node, one entire child
//! subtree at a time.  Postorders are the orderings used in practice by
//! multifrontal solvers (e.g. MUMPS), because the frontier files can then be
//! managed as a stack.  Liu showed that the best postorder of an in-tree is
//! obtained by visiting the children of every node in decreasing order of
//! `peak(child) − f(child)`, where `peak(child)` is the (postorder) peak
//! memory of the child subtree.  In the top-down (out-tree) orientation used
//! by this crate the rule is mirrored: while a child subtree is traversed the
//! files of the *not yet processed* siblings are resident, so children must
//! be visited in **increasing** order of `peak(child) − f(child)` (the
//! reverse of the bottom-up order, consistently with the in-tree ↔ out-tree
//! reversal of Section III-C).
//!
//! The best postorder is optimal for many practical assembly trees (see the
//! experiments of the paper and of `crates/bench`), but Theorem 1 shows that
//! it can be arbitrarily worse than the optimal traversal on adversarial
//! trees such as [`crate::gadgets::harpoon_tower`].

use crate::traversal::Traversal;
use crate::tree::{NodeId, Size, Tree};
use crate::TraversalResult;

/// Peak memory of the postorder traversal of each subtree, assuming children
/// are processed in the given per-node order.
///
/// `child_order[i]` lists the children of `i` in processing order; it must be
/// a permutation of `tree.children(i)`.
fn subtree_peaks_with_order(tree: &Tree, child_order: &[Vec<NodeId>]) -> Vec<Size> {
    let mut peak = vec![0 as Size; tree.len()];
    for &i in tree.dfs_bottomup().iter() {
        let mut best = tree.mem_req(i);
        // Files of the not-yet-processed siblings remain resident while a
        // child subtree is being traversed.
        let mut remaining: Size = child_order[i].iter().map(|&c| tree.f(c)).sum();
        for &c in &child_order[i] {
            remaining -= tree.f(c);
            best = best.max(peak[c] + remaining);
        }
        peak[i] = best;
    }
    peak
}

/// Result of a postorder computation: the traversal, its peak, and the
/// per-subtree peaks (useful for diagnostics and for the experiments).
#[derive(Debug, Clone)]
pub struct PostOrderResult {
    /// The postorder traversal (top-down, root first).
    pub traversal: Traversal,
    /// Peak memory of the traversal.
    pub peak: Size,
    /// Peak memory of the postorder traversal of every subtree.
    pub subtree_peaks: Vec<Size>,
}

impl From<PostOrderResult> for TraversalResult {
    fn from(value: PostOrderResult) -> Self {
        TraversalResult {
            traversal: value.traversal,
            peak: value.peak,
        }
    }
}

/// Generate the traversal corresponding to a per-node child processing order.
fn traversal_from_child_order(tree: &Tree, child_order: &[Vec<NodeId>]) -> Traversal {
    let mut order = Vec::with_capacity(tree.len());
    let mut stack = vec![tree.root()];
    while let Some(i) = stack.pop() {
        order.push(i);
        for &c in child_order[i].iter().rev() {
            stack.push(c);
        }
    }
    Traversal::new(order)
}

/// Compute Liu's **best postorder** traversal of `tree` and its peak memory.
///
/// Children of every node are visited in increasing order of
/// `peak(subtree) − f(child)` (the top-down mirror of Liu's rule); ties are
/// broken by increasing subtree peak and then by node id, which makes the
/// result deterministic.
///
/// Runs in `O(p log p)` time.
///
/// ```
/// use treemem::{TreeBuilder, postorder::best_postorder};
/// let mut b = TreeBuilder::new();
/// let root = b.add_root(0, 0);
/// let a = b.add_child(root, 2, 0);
/// b.add_child(a, 10, 0);
/// let c = b.add_child(root, 3, 0);
/// b.add_child(c, 4, 0);
/// let tree = b.build().unwrap();
/// let result = best_postorder(&tree);
/// assert_eq!(result.peak, result.traversal.peak_memory(&tree).unwrap());
/// ```
pub fn best_postorder(tree: &Tree) -> PostOrderResult {
    // Peaks are computed bottom-up; the processing order of the children of a
    // node only depends on quantities of their own subtrees, so a single
    // bottom-up pass both orders the children and computes the peaks.
    let mut peak = vec![0 as Size; tree.len()];
    let mut child_order: Vec<Vec<NodeId>> = vec![Vec::new(); tree.len()];
    for &i in tree.dfs_bottomup().iter() {
        let mut order: Vec<NodeId> = tree.children(i).to_vec();
        order.sort_by(|&a, &b| {
            let ka = peak[a] - tree.f(a);
            let kb = peak[b] - tree.f(b);
            ka.cmp(&kb)
                .then_with(|| peak[a].cmp(&peak[b]))
                .then_with(|| a.cmp(&b))
        });
        let mut best = tree.mem_req(i);
        let mut remaining: Size = order.iter().map(|&c| tree.f(c)).sum();
        for &c in &order {
            remaining -= tree.f(c);
            best = best.max(peak[c] + remaining);
        }
        peak[i] = best;
        child_order[i] = order;
    }
    let traversal = traversal_from_child_order(tree, &child_order);
    PostOrderResult {
        traversal,
        peak: peak[tree.root()],
        subtree_peaks: peak,
    }
}

/// Compute the postorder traversal that follows the *stored* child order of
/// the tree (the "natural" postorder), without Liu's reordering.
///
/// This is the ordering a solver would use if it did not sort the children;
/// it is never better than [`best_postorder`] and is used as a baseline in
/// the experiments.
pub fn natural_postorder(tree: &Tree) -> PostOrderResult {
    let child_order: Vec<Vec<NodeId>> = tree.nodes().map(|i| tree.children(i).to_vec()).collect();
    let peaks = subtree_peaks_with_order(tree, &child_order);
    let traversal = traversal_from_child_order(tree, &child_order);
    PostOrderResult {
        traversal,
        peak: peaks[tree.root()],
        subtree_peaks: peaks,
    }
}

/// Peak memory of an arbitrary postorder described by an explicit per-node
/// child processing order.
///
/// # Panics
/// Panics if `child_order` does not have one entry per node or if an entry is
/// not a permutation of that node's children (checked with debug assertions).
pub fn postorder_peak(tree: &Tree, child_order: &[Vec<NodeId>]) -> Size {
    assert_eq!(
        child_order.len(),
        tree.len(),
        "one child order per node expected"
    );
    #[cfg(debug_assertions)]
    for i in tree.nodes() {
        let mut a = child_order[i].clone();
        let mut b = tree.children(i).to_vec();
        a.sort_unstable();
        b.sort_unstable();
        debug_assert_eq!(
            a, b,
            "child_order[{i}] is not a permutation of the children"
        );
    }
    subtree_peaks_with_order(tree, child_order)[tree.root()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    #[test]
    fn single_node() {
        let mut b = TreeBuilder::new();
        b.add_root(3, 4);
        let tree = b.build().unwrap();
        let result = best_postorder(&tree);
        assert_eq!(result.peak, 7);
        assert_eq!(result.traversal.order(), &[0]);
    }

    #[test]
    fn chain_peak_is_max_mem_req() {
        let mut b = TreeBuilder::new();
        let mut prev = b.add_root(1, 0);
        for f in [5, 2, 9, 3] {
            prev = b.add_child(prev, f, 0);
        }
        let tree = b.build().unwrap();
        let result = best_postorder(&tree);
        // A chain has a unique traversal; its peak is the max MemReq.
        assert_eq!(result.peak, tree.max_mem_req());
        assert_eq!(result.peak, result.traversal.peak_memory(&tree).unwrap());
    }

    #[test]
    fn children_are_reordered_to_reduce_the_peak() {
        // Two branches under the root:
        //   branch A: file 1, subtree peak 1 + 100 = 101 (leaf child of size 100)
        //   branch B: file 50, subtree peak 50 (leaf)
        // Processing A first: max(101 + 50, 50) = 151? No: while A is
        // traversed, B's file (50) is resident -> 151; B first: while B is
        // traversed (peak 50) A's file 1 is resident -> max(51, 101) = 101.
        let mut b = TreeBuilder::new();
        let r = b.add_root(0, 0);
        let a = b.add_child(r, 1, 0);
        b.add_child(a, 100, 0);
        b.add_child(r, 50, 0);
        let tree = b.build().unwrap();
        let best = best_postorder(&tree);
        assert_eq!(best.peak, 101);
        // The natural order (A first) is worse.
        let natural = natural_postorder(&tree);
        assert_eq!(natural.peak, 151);
        assert!(natural.peak >= best.peak);
        // Peaks match a direct evaluation of the produced traversals.
        assert_eq!(best.peak, best.traversal.peak_memory(&tree).unwrap());
        assert_eq!(natural.peak, natural.traversal.peak_memory(&tree).unwrap());
    }

    #[test]
    fn postorder_peak_matches_explicit_orders() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(0, 0);
        let a = b.add_child(r, 1, 0);
        b.add_child(a, 100, 0);
        let c = b.add_child(r, 50, 0);
        let tree = b.build().unwrap();
        let order_a_first = vec![vec![a, c], vec![2], vec![], vec![]];
        let order_c_first = vec![vec![c, a], vec![2], vec![], vec![]];
        assert_eq!(postorder_peak(&tree, &order_a_first), 151);
        assert_eq!(postorder_peak(&tree, &order_c_first), 101);
    }

    #[test]
    fn traversal_is_a_genuine_postorder() {
        // Every subtree must occupy a contiguous range of the traversal.
        let mut b = TreeBuilder::new();
        let r = b.add_root(0, 0);
        for _ in 0..3 {
            let c = b.add_child(r, 2, 1);
            for _ in 0..2 {
                let d = b.add_child(c, 3, 1);
                b.add_child(d, 1, 0);
            }
        }
        let tree = b.build().unwrap();
        let result = best_postorder(&tree);
        let pos = result.traversal.positions(tree.len()).unwrap();
        let sizes = tree.subtree_sizes();
        for i in tree.nodes() {
            // All descendants must be within [pos[i], pos[i] + size - 1].
            let lo = pos[i];
            let hi = lo + sizes[i] - 1;
            let mut stack = vec![i];
            while let Some(v) = stack.pop() {
                assert!(pos[v] >= lo && pos[v] <= hi);
                stack.extend_from_slice(tree.children(v));
            }
        }
    }

    #[test]
    fn best_postorder_is_never_worse_than_natural() {
        // A couple of handcrafted shapes.
        for branches in 2..6 {
            let mut b = TreeBuilder::new();
            let r = b.add_root(0, 0);
            for k in 0..branches {
                let c = b.add_child(r, (k as Size) + 1, 0);
                b.add_child(c, 10 * ((branches - k) as Size), 0);
            }
            let tree = b.build().unwrap();
            let best = best_postorder(&tree);
            let natural = natural_postorder(&tree);
            assert!(best.peak <= natural.peak);
        }
    }
}
