//! Model variants of Section III-C of the paper and the transformations that
//! reduce them to the canonical model.
//!
//! * **Bottom-up traversals of in-trees** — assembly trees are processed from
//!   the leaves to the root.  A bottom-up traversal of the tree seen as an
//!   in-tree is valid iff its reverse is a valid top-down traversal of the
//!   same tree seen as an out-tree, and both have the same peak memory
//!   ([`bottom_up_memory_profile`], [`bottom_up_peak`]).
//! * **Model with replacement** (pebble-game style, Figure 1) — processing a
//!   node needs `max(f(i), Σ f(children))`; it is simulated by the canonical
//!   model with `n(i) = −min(f(i), Σ f(children))`
//!   ([`from_replacement_model`]).
//! * **Liu's model** (Figure 2) — every node `x` carries a processing peak
//!   `n(x⁺)` and a storage requirement `n(x⁻)`; it is simulated with
//!   `f(x) = n(x⁻)` and `n(x) = n(x⁺) − n(x⁻) − Σ_{child c} n(c⁻)`
//!   ([`from_liu_model`]).

use crate::error::{TraversalError, TreeError};
use crate::traversal::{MemoryProfile, MemoryStep, Traversal};
use crate::tree::{NodeId, Size, Tree};

/// Memory requirement of node `i` in the *replacement* model:
/// `max(f(i), Σ f(children))`.
pub fn replacement_mem_req(tree: &Tree, i: NodeId) -> Size {
    tree.f(i).max(tree.children_file_sum(i))
}

/// Convert a tree whose nodes follow the replacement model (the execution
/// files of the input tree are ignored) into an equivalent tree in the
/// canonical model, by giving every node the execution weight
/// `n(i) = −min(f(i), Σ f(children))` as in Figure 1 of the paper.
///
/// The peak memory of any traversal of the returned tree equals the peak of
/// the same traversal of the input under replacement semantics.
pub fn from_replacement_model(tree: &Tree) -> Tree {
    let weights: Vec<Size> = tree
        .nodes()
        .map(|i| -tree.f(i).min(tree.children_file_sum(i)))
        .collect();
    tree.with_weights(tree.files().to_vec(), weights)
}

/// Build a tree in the canonical model from an instance of Liu's model
/// (Figure 2 of the paper).
///
/// `parents` describes the topology (as in [`Tree::from_parents`]),
/// `peaks[x]` is `n(x⁺)` (memory needed while the column of `x` is
/// processed) and `residuals[x]` is `n(x⁻)` (memory retained by the subtree
/// of `x` after it has been processed).
///
/// In the returned tree, the bottom-up processing of node `x` uses exactly
/// `n(x⁺)` memory within its subtree and leaves exactly `n(x⁻)` resident,
/// so MinMemory on the returned tree solves Liu's original problem.
pub fn from_liu_model(
    parents: &[Option<NodeId>],
    peaks: &[Size],
    residuals: &[Size],
) -> Result<Tree, TreeError> {
    if parents.len() != peaks.len() || parents.len() != residuals.len() {
        return Err(TreeError::LengthMismatch {
            parents: parents.len(),
            files: residuals.len(),
            weights: peaks.len(),
        });
    }
    let files: Vec<Size> = residuals.to_vec();
    // n(x) = n(x+) - n(x-) - sum over children of n(c-).
    let mut children_residual = vec![0 as Size; parents.len()];
    for (i, &par) in parents.iter().enumerate() {
        if let Some(par) = par {
            if par < parents.len() {
                children_residual[par] += residuals[i];
            }
        }
    }
    let weights: Vec<Size> = (0..parents.len())
        .map(|i| peaks[i] - residuals[i] - children_residual[i])
        .collect();
    Tree::from_parents(parents, &files, &weights)
}

/// Check a **bottom-up** traversal (children before parents, the natural
/// order of an assembly tree) and compute its step-by-step memory usage.
///
/// Resident memory between steps is the total size of the output files of
/// completed subtrees whose parent has not been processed yet; while node `i`
/// executes, its execution file and its own output file are resident as well.
pub fn bottom_up_memory_profile(
    tree: &Tree,
    traversal: &Traversal,
) -> Result<MemoryProfile, TraversalError> {
    let pos = traversal.positions(tree.len())?;
    for i in tree.nodes() {
        for &c in tree.children(i) {
            if pos[c] >= pos[i] {
                return Err(TraversalError::PrecedenceViolation { node: i, parent: c });
            }
        }
    }
    let mut resident: Size = 0;
    let mut steps = Vec::with_capacity(tree.len());
    for &i in traversal.order() {
        let during = resident + tree.n(i) + tree.f(i);
        let after = resident - tree.children_file_sum(i) + tree.f(i);
        steps.push(MemoryStep {
            node: i,
            during,
            after,
        });
        resident = after;
    }
    Ok(MemoryProfile { steps })
}

/// Peak memory of a bottom-up traversal; see [`bottom_up_memory_profile`].
pub fn bottom_up_peak(tree: &Tree, traversal: &Traversal) -> Result<Size, TraversalError> {
    Ok(bottom_up_memory_profile(tree, traversal)?.peak())
}

/// Convert a valid top-down traversal into the equivalent bottom-up
/// traversal (and vice versa): simply reverse the order.  Provided for
/// readability at call sites.
pub fn reverse_orientation(traversal: &Traversal) -> Traversal {
    traversal.reversed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minmem::min_mem;
    use crate::postorder::best_postorder;
    use crate::tree::TreeBuilder;

    fn sample_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.add_root(2, 1);
        let a = b.add_child(r, 3, 2);
        b.add_child(a, 7, 1);
        b.add_child(a, 5, 0);
        let c = b.add_child(r, 4, 0);
        let d = b.add_child(c, 6, 3);
        b.add_child(d, 2, 2);
        b.build().unwrap()
    }

    #[test]
    fn replacement_model_semantics() {
        let tree = sample_tree();
        let converted = from_replacement_model(&tree);
        for i in converted.nodes() {
            assert_eq!(converted.mem_req(i), replacement_mem_req(&tree, i));
        }
        // The transformation never produces a positive execution file.
        assert!(converted.weights().iter().all(|&n| n <= 0));
    }

    #[test]
    fn replacement_transformation_matches_figure_1() {
        // Figure 1: a root with children of sizes 1 and 2, the child of size 1
        // having children of sizes 1 and 3, etc.  We only check the generic
        // property: MemReq becomes max(f, sum of children).
        let mut b = TreeBuilder::new();
        let a = b.add_root(1, 0);
        let bn = b.add_child(a, 1, 0);
        b.add_child(a, 2, 0);
        b.add_child(bn, 1, 0);
        b.add_child(bn, 3, 0);
        let tree = b.build().unwrap();
        let converted = from_replacement_model(&tree);
        assert_eq!(converted.n(a), -1); // min(1, 1 + 2)
        assert_eq!(converted.n(bn), -1); // min(1, 1 + 3)
        assert_eq!(converted.mem_req(a), 3);
        assert_eq!(converted.mem_req(bn), 4);
    }

    #[test]
    fn liu_model_round_trip_semantics() {
        // Chain c -> b -> a (a is the leaf; bottom-up processes a, b, c).
        let parents = [None, Some(0), Some(1)];
        // peaks (n+) and residuals (n-) chosen arbitrarily but consistent
        // (peak >= residual, peak >= sum of children residuals).
        let peaks = [9, 7, 4];
        let residuals = [1, 3, 2];
        let tree = from_liu_model(&parents, &peaks, &residuals).unwrap();
        // Bottom-up traversal: leaf (2), then 1, then the root 0.
        let bottom_up = Traversal::new(vec![2, 1, 0]);
        let profile = bottom_up_memory_profile(&tree, &bottom_up).unwrap();
        // During each node, memory within the subtree is exactly the peak n+;
        // after each node, exactly the residual n-.
        assert_eq!(profile.steps[0].during, peaks[2]);
        assert_eq!(profile.steps[0].after, residuals[2]);
        assert_eq!(profile.steps[1].during, peaks[1]);
        assert_eq!(profile.steps[1].after, residuals[1]);
        assert_eq!(profile.steps[2].during, peaks[0]);
        assert_eq!(profile.steps[2].after, residuals[0]);
    }

    #[test]
    fn liu_model_rejects_mismatched_lengths() {
        assert!(from_liu_model(&[None], &[1, 2], &[1]).is_err());
    }

    #[test]
    fn bottom_up_and_top_down_peaks_agree() {
        let tree = sample_tree();
        for result in [min_mem(&tree).traversal, best_postorder(&tree).traversal] {
            let top_down_peak = result.peak_memory(&tree).unwrap();
            let bottom_up = reverse_orientation(&result);
            let bottom_up_peak = bottom_up_peak(&tree, &bottom_up).unwrap();
            assert_eq!(top_down_peak, bottom_up_peak);
        }
    }

    #[test]
    fn bottom_up_checker_rejects_wrong_orders() {
        let tree = sample_tree();
        let top_down = min_mem(&tree).traversal;
        // A top-down order is not a valid bottom-up order (root first).
        assert!(bottom_up_memory_profile(&tree, &top_down).is_err());
    }
}
