//! Adversarial tree families used in the proofs of the paper.
//!
//! * [`harpoon`] and [`harpoon_tower`] — the family of Theorem 1, on which
//!   the best postorder traversal needs arbitrarily more memory than the
//!   optimal traversal;
//! * [`two_partition_gadget`] — the reduction of Theorem 2, which shows that
//!   the MinIO problem is NP-complete (the minimum I/O volume of the gadget
//!   is `S/2` exactly when the embedded 2-Partition instance has a solution).

use crate::tree::{NodeId, Size, Tree, TreeBuilder};

/// Build the one-level *harpoon* tree of Theorem 1 (Figure 3(a)).
///
/// The root (with an empty input file) has `branches` identical branches.
/// Each branch is a chain of three nodes with input files `big / branches`,
/// `eps` and `big`; all execution files are zero.
///
/// * The best postorder must keep the `big / branches` files of the pending
///   branches while it descends into the first one, so it needs
///   `big + eps + (branches − 1) · big / branches` memory.
/// * The optimal traversal first turns every `big / branches` file into an
///   `eps` file (processing all first-level nodes), and only then descends
///   one branch at a time: it needs `big + branches · eps` memory.
///
/// # Panics
/// Panics if `branches == 0`, if `big` is not a positive multiple of
/// `branches`, or if `eps <= 0`.
pub fn harpoon(branches: usize, big: Size, eps: Size) -> Tree {
    harpoon_tower(branches, big, eps, 1)
}

/// Build the nested harpoon ("tower") of Theorem 1 (Figure 3(b)): the
/// one-level harpoon in which every large leaf is recursively replaced by
/// another harpoon, `levels` times.
///
/// As the number of levels grows, the best postorder keeps
/// `(branches − 1) · big / branches` pending memory **per level**, while the
/// optimal traversal only accumulates `(branches − 1) · eps` per level; the
/// ratio between the two therefore grows without bound, which is the
/// statement of Theorem 1.  (`crates/bench/src/bin/exp_theorem1.rs` measures
/// the ratio with the exact algorithms.)
///
/// # Panics
/// Panics if `branches == 0`, `levels == 0`, if `big` is not a positive
/// multiple of `branches`, or if `eps <= 0`.
pub fn harpoon_tower(branches: usize, big: Size, eps: Size, levels: usize) -> Tree {
    assert!(branches > 0, "harpoon needs at least one branch");
    assert!(levels > 0, "harpoon tower needs at least one level");
    assert!(
        big > 0 && big % branches as Size == 0,
        "`big` must be a positive multiple of `branches`"
    );
    assert!(eps > 0, "`eps` must be positive");
    let prong = big / branches as Size;
    let mut builder = TreeBuilder::new();
    let root = builder.add_root(0, 0);
    // Frontier of "large" nodes to expand into one more harpoon level. The
    // root plays that role for the first level (its input file is 0 instead
    // of `big`, which only lowers every bound by the same constant).
    let mut expand: Vec<NodeId> = vec![root];
    for _ in 0..levels {
        let mut next = Vec::with_capacity(expand.len() * branches);
        for &top in &expand {
            for _ in 0..branches {
                let u = builder.add_child(top, prong, 0);
                let v = builder.add_child(u, eps, 0);
                let w = builder.add_child(v, big, 0);
                next.push(w);
            }
        }
        expand = next;
    }
    builder
        .build()
        .expect("harpoon construction is always a valid tree")
}

/// Peak memory of the best postorder on [`harpoon`], in closed form:
/// `big + eps + (branches − 1) · big / branches`.
pub fn harpoon_postorder_peak(branches: usize, big: Size, eps: Size) -> Size {
    big + eps + (branches as Size - 1) * (big / branches as Size)
}

/// Peak memory of the optimal traversal on [`harpoon`], in closed form:
/// `big + branches · eps`.
pub fn harpoon_optimal_peak(branches: usize, big: Size, eps: Size) -> Size {
    big + branches as Size * eps
}

/// Peak memory of the best postorder on [`harpoon_tower`], in closed form.
///
/// For a single level this is [`harpoon_postorder_peak`].  For deeper towers
/// the postorder peak is reached while an internal `big` node (the root of a
/// nested harpoon, whose memory requirement is `2·big`) is processed with the
/// `(branches − 1)` pending `big / branches` files of every level above it:
/// `2·big + (levels − 1)·(branches − 1)·big / branches`.  The optimal
/// traversal stays close to `2·big`, so the ratio between the two grows
/// without bound with the number of levels, which is the statement of
/// Theorem 1.
pub fn harpoon_tower_postorder_peak(branches: usize, big: Size, eps: Size, levels: usize) -> Size {
    assert!(levels >= 1);
    if levels == 1 {
        harpoon_postorder_peak(branches, big, eps)
    } else {
        let prong = big / branches as Size;
        2 * big + (levels as Size - 1) * (branches as Size - 1) * prong
    }
}

/// The NP-completeness gadget of Theorem 2 (Figure 4), parameterised by a
/// 2-Partition instance.
#[derive(Debug, Clone)]
pub struct TwoPartitionGadget {
    /// The tree of Figure 4 (2·n + 3 nodes).
    pub tree: Tree,
    /// Main-memory size of the reduction: `M = 2·S` where `S = Σ aᵢ`.
    pub memory: Size,
    /// Target I/O volume: `S / 2`.  The MinIO instance `(tree, memory)` has a
    /// solution with I/O volume `≤ io_bound` iff the 2-Partition instance has
    /// a solution.
    pub io_bound: Size,
    /// Node ids of the first-level nodes `T₁…Tₙ` carrying the `aᵢ` files.
    pub item_nodes: Vec<NodeId>,
    /// Node id of `T_big` (input file of size `S`).
    pub big_node: NodeId,
}

/// Build the 2-Partition gadget of Theorem 2.
///
/// The root `T_in` produces one file of size `aᵢ` per item plus one file of
/// size `S` for `T_big`; every first-level node has a single leaf child whose
/// file has size `S` (for the items) or `S/2` (for `T_big`).  With
/// `M = 2S`, processing `T_big` first requires evicting exactly `S/2` worth
/// of `aᵢ` files, which is possible with I/O volume `S/2` iff the `aᵢ` can be
/// split into two halves of equal size.
///
/// # Panics
/// Panics if `values` is empty, contains a non-positive value, or if the sum
/// of the values is odd (2-Partition instances are normalised to even sums).
pub fn two_partition_gadget(values: &[Size]) -> TwoPartitionGadget {
    assert!(!values.is_empty(), "2-Partition instance must not be empty");
    assert!(
        values.iter().all(|&a| a > 0),
        "2-Partition values must be positive"
    );
    let total: Size = values.iter().sum();
    assert!(total % 2 == 0, "2-Partition instance must have an even sum");
    let mut builder = TreeBuilder::new();
    let root = builder.add_root(0, 0);
    let mut item_nodes = Vec::with_capacity(values.len());
    for &a in values {
        let t = builder.add_child(root, a, 0);
        builder.add_child(t, total, 0);
        item_nodes.push(t);
    }
    let big_node = builder.add_child(root, total, 0);
    builder.add_child(big_node, total / 2, 0);
    let tree = builder
        .build()
        .expect("gadget construction is always a valid tree");
    TwoPartitionGadget {
        tree,
        memory: 2 * total,
        io_bound: total / 2,
        item_nodes,
        big_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minmem::min_mem;
    use crate::postorder::best_postorder;

    #[test]
    fn harpoon_has_expected_size_and_weights() {
        let tree = harpoon(4, 400, 1);
        assert_eq!(tree.len(), 1 + 4 * 3);
        assert_eq!(tree.children(tree.root()).len(), 4);
        let mut prong = 0;
        let mut eps = 0;
        let mut big = 0;
        for i in tree.nodes() {
            match tree.f(i) {
                100 => prong += 1,
                1 => eps += 1,
                400 => big += 1,
                0 => assert_eq!(i, tree.root()),
                other => panic!("unexpected file size {other}"),
            }
        }
        assert_eq!((prong, eps, big), (4, 4, 4));
    }

    #[test]
    fn harpoon_closed_forms_match_the_algorithms() {
        for branches in [2usize, 3, 5] {
            let big = 60;
            let eps = 1;
            let tree = harpoon(branches, big, eps);
            let po = best_postorder(&tree);
            let opt = min_mem(&tree);
            assert_eq!(
                po.peak,
                harpoon_postorder_peak(branches, big, eps),
                "branches={branches}"
            );
            assert_eq!(
                opt.peak,
                harpoon_optimal_peak(branches, big, eps),
                "branches={branches}"
            );
        }
    }

    #[test]
    fn tower_postorder_closed_form_matches_the_algorithm() {
        for branches in [2usize, 3, 4] {
            for levels in 1..=3 {
                let big = 1200;
                let eps = 1;
                let tree = harpoon_tower(branches, big, eps, levels);
                let po = best_postorder(&tree);
                assert_eq!(
                    po.peak,
                    harpoon_tower_postorder_peak(branches, big, eps, levels),
                    "branches={branches} levels={levels}"
                );
            }
        }
    }

    #[test]
    fn tower_ratio_grows_with_the_number_of_levels() {
        // From two levels onwards the optimal peak stays close to
        // 2 * big (dominated by the largest MemReq) while the postorder peak
        // keeps accumulating (branches - 1) * big / branches per level, so
        // the ratio grows without bound (Theorem 1).
        let branches = 4;
        let big = 4000;
        let eps = 1;
        let mut previous_ratio = 0.0;
        for levels in 2..5 {
            let tree = harpoon_tower(branches, big, eps, levels);
            let po = best_postorder(&tree);
            let opt = min_mem(&tree);
            let ratio = po.peak as f64 / opt.peak as f64;
            assert!(
                ratio > previous_ratio,
                "levels={levels}: ratio {ratio} should grow"
            );
            previous_ratio = ratio;
        }
        assert!(previous_ratio > 1.9);
    }

    #[test]
    fn tower_size_grows_geometrically() {
        let t1 = harpoon_tower(3, 300, 1, 1);
        let t2 = harpoon_tower(3, 300, 1, 2);
        assert_eq!(t1.len(), 1 + 3 * 3);
        assert_eq!(t2.len(), 1 + 3 * 3 + 9 * 3);
    }

    #[test]
    fn gadget_structure_matches_figure_4() {
        let gadget = two_partition_gadget(&[3, 5, 2, 4, 6, 4]);
        let tree = &gadget.tree;
        let total = 24;
        assert_eq!(tree.len(), 2 * 6 + 3);
        assert_eq!(gadget.memory, 2 * total);
        assert_eq!(gadget.io_bound, total / 2);
        assert_eq!(tree.mem_req(tree.root()), total + total); // the aᵢ plus T_big
        assert_eq!(tree.max_mem_req(), 2 * total);
        // Item nodes carry the aᵢ and have a single child of size S.
        for (&node, &a) in gadget.item_nodes.iter().zip([3, 5, 2, 4, 6, 4].iter()) {
            assert_eq!(tree.f(node), a);
            assert_eq!(tree.children(node).len(), 1);
            assert_eq!(tree.f(tree.children(node)[0]), total);
        }
        assert_eq!(tree.f(gadget.big_node), total);
        assert_eq!(tree.f(tree.children(gadget.big_node)[0]), total / 2);
    }

    #[test]
    #[should_panic(expected = "even sum")]
    fn gadget_rejects_odd_sums() {
        two_partition_gadget(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn harpoon_rejects_indivisible_big_files() {
        harpoon(3, 100, 1);
    }
}
