//! A common interface over the MinMemory traversal algorithms.
//!
//! The crate implements four ways of producing a traversal and its peak
//! memory: the best postorder (Liu 1986), the natural postorder, Liu's exact
//! hill–valley algorithm (1987), the paper's `MinMem` (Algorithms 3–4) and a
//! brute-force oracle for tiny trees.  Callers that want to compare them —
//! the experiment harness, the sweep engine, integration tests — previously
//! named each function explicitly; the [`MinMemSolver`] trait lets them
//! enumerate solvers generically instead, and [`SolverRegistry`] provides a
//! name-indexed catalogue of every built-in solver.
//!
//! ```
//! use treemem::gadgets::harpoon;
//! use treemem::solver::SolverRegistry;
//!
//! let tree = harpoon(3, 300, 1);
//! let registry = SolverRegistry::with_builtin();
//! for solver in registry.iter().filter(|s| s.supports(&tree)) {
//!     let result = solver.solve(&tree);
//!     assert_eq!(result.peak, result.traversal.peak_memory(&tree).unwrap());
//! }
//! ```

use crate::brute::brute_force_optimal;
use crate::liu::liu_exact;
use crate::minmem::min_mem;
use crate::postorder::{best_postorder, natural_postorder};
use crate::registry::{get_or_unknown, UnknownName};
use crate::tree::Tree;
use crate::TraversalResult;

/// A MinMemory algorithm: produces a valid traversal of a tree together with
/// its peak memory.
pub trait MinMemSolver: Send + Sync {
    /// Short stable identifier (used in registries, reports and JSON output).
    fn name(&self) -> &'static str;

    /// One-line human description for reports.
    fn description(&self) -> &'static str;

    /// Whether the solver returns the exact MinMemory optimum.
    fn is_exact(&self) -> bool;

    /// Largest tree (in nodes) the solver accepts, if bounded.
    fn node_limit(&self) -> Option<usize> {
        None
    }

    /// Whether the solver can handle `tree` (default: the node limit).
    fn supports(&self, tree: &Tree) -> bool {
        self.node_limit().is_none_or(|limit| tree.len() <= limit)
    }

    /// Compute a traversal of `tree` and its peak memory.
    ///
    /// # Panics
    /// May panic when `supports(tree)` is false.
    fn solve(&self, tree: &Tree) -> TraversalResult;

    /// [`MinMemSolver::solve`] with a cooperative stop probe.  The built-in
    /// solvers run in milliseconds even at 10⁵ nodes, so the default checks
    /// the probe only on entry and on exit (bounding the cancellation
    /// latency by one solve); a solver with a genuinely long inner loop can
    /// override this to poll mid-solve.  `None` means the probe fired and
    /// the result was discarded.
    fn solve_with_stop(
        &self,
        tree: &Tree,
        stop: Option<&dyn Fn() -> bool>,
    ) -> Option<TraversalResult> {
        if let Some(probe) = stop {
            if probe() {
                return None;
            }
        }
        let result = self.solve(tree);
        if let Some(probe) = stop {
            if probe() {
                return None;
            }
        }
        Some(result)
    }
}

/// Liu's best postorder ([`best_postorder`]); the ordering used by practical
/// multifrontal solvers, optimal among postorders but not in general.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestPostorderSolver;

impl MinMemSolver for BestPostorderSolver {
    fn name(&self) -> &'static str {
        "postorder"
    }
    fn description(&self) -> &'static str {
        "Liu's best postorder (optimal among postorders)"
    }
    fn is_exact(&self) -> bool {
        false
    }
    fn solve(&self, tree: &Tree) -> TraversalResult {
        best_postorder(tree).into()
    }
}

/// The postorder following the stored child order ([`natural_postorder`]);
/// the baseline a solver uses when it does not reorder children.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaturalPostorderSolver;

impl MinMemSolver for NaturalPostorderSolver {
    fn name(&self) -> &'static str {
        "natural"
    }
    fn description(&self) -> &'static str {
        "postorder in stored child order (no reordering)"
    }
    fn is_exact(&self) -> bool {
        false
    }
    fn solve(&self, tree: &Tree) -> TraversalResult {
        natural_postorder(tree).into()
    }
}

/// Liu's exact hill–valley algorithm ([`liu_exact`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct LiuSolver;

impl MinMemSolver for LiuSolver {
    fn name(&self) -> &'static str {
        "liu"
    }
    fn description(&self) -> &'static str {
        "Liu 1987 exact algorithm (hill-valley segments)"
    }
    fn is_exact(&self) -> bool {
        true
    }
    fn solve(&self, tree: &Tree) -> TraversalResult {
        liu_exact(tree).into()
    }
}

/// The paper's `MinMem` algorithm ([`min_mem`], Algorithms 3 and 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMemExploreSolver;

impl MinMemSolver for MinMemExploreSolver {
    fn name(&self) -> &'static str {
        "minmem"
    }
    fn description(&self) -> &'static str {
        "the paper's MinMem/Explore exact algorithm"
    }
    fn is_exact(&self) -> bool {
        true
    }
    fn solve(&self, tree: &Tree) -> TraversalResult {
        min_mem(tree).into()
    }
}

/// Practical node limit advertised by [`BruteForceSolver`].  The oracle's
/// hard cap is [`crate::brute::MAX_BRUTE_FORCE_NODES`] (a bitmask width),
/// but its state space is exponential, so generic enumeration — sweeps,
/// registry-driven tests — must stop well before that.
pub const BRUTE_FORCE_PRACTICAL_NODES: usize = 18;

/// The exponential brute-force oracle ([`brute_force_optimal`]); only
/// advertises support for trees of at most [`BRUTE_FORCE_PRACTICAL_NODES`]
/// nodes so registry-driven callers never trigger an exponential blow-up.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceSolver;

impl MinMemSolver for BruteForceSolver {
    fn name(&self) -> &'static str {
        "brute"
    }
    fn description(&self) -> &'static str {
        "exhaustive dynamic programming oracle (tiny trees only)"
    }
    fn is_exact(&self) -> bool {
        true
    }
    fn node_limit(&self) -> Option<usize> {
        Some(BRUTE_FORCE_PRACTICAL_NODES)
    }
    fn solve(&self, tree: &Tree) -> TraversalResult {
        brute_force_optimal(tree)
    }
}

/// Name-indexed catalogue of MinMemory solvers.
pub struct SolverRegistry {
    solvers: Vec<Box<dyn MinMemSolver>>,
}

impl SolverRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        SolverRegistry {
            solvers: Vec::new(),
        }
    }

    /// The registry of all built-in solvers, in report order.
    pub fn with_builtin() -> Self {
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(NaturalPostorderSolver));
        registry.register(Box::new(BestPostorderSolver));
        registry.register(Box::new(LiuSolver));
        registry.register(Box::new(MinMemExploreSolver));
        registry.register(Box::new(BruteForceSolver));
        registry
    }

    /// Add a solver.  A solver with the same name replaces the old entry, so
    /// downstream crates can override built-ins.
    pub fn register(&mut self, solver: Box<dyn MinMemSolver>) {
        if let Some(existing) = self.solvers.iter_mut().find(|s| s.name() == solver.name()) {
            *existing = solver;
        } else {
            self.solvers.push(solver);
        }
    }

    /// Look a solver up by name.
    pub fn get(&self, name: &str) -> Option<&dyn MinMemSolver> {
        self.solvers
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_ref())
    }

    /// Look a solver up by name, with a typed [`UnknownName`] error listing
    /// the registered names on a miss.
    pub fn get_or_err(&self, name: &str) -> Result<&dyn MinMemSolver, UnknownName> {
        get_or_unknown("solver", name, self.get(name), || self.names())
    }

    /// Registered names, in registration order.  Returns owned `String`s —
    /// the same signature as `minio::PolicyRegistry::names` — so generic
    /// callers can treat the two catalogues uniformly.
    pub fn names(&self) -> Vec<String> {
        self.solvers.iter().map(|s| s.name().to_string()).collect()
    }

    /// Iterate over the solvers in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn MinMemSolver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }
}

impl Default for SolverRegistry {
    fn default() -> Self {
        SolverRegistry::with_builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::harpoon;

    #[test]
    fn builtin_registry_has_the_expected_solvers() {
        let registry = SolverRegistry::with_builtin();
        assert_eq!(
            registry.names(),
            vec!["natural", "postorder", "liu", "minmem", "brute"]
        );
        assert!(registry.get("liu").is_some());
        assert!(registry.get("nope").is_none());
        assert!(registry.get_or_err("liu").is_ok());
        let err = registry.get_or_err("nope").map(|_| ()).unwrap_err();
        assert_eq!(err.kind, "solver");
        assert_eq!(err.known, registry.names());
        assert!(!registry.is_empty());
    }

    #[test]
    fn exact_solvers_agree_and_dominate_postorders() {
        let tree = harpoon(4, 400, 1);
        let registry = SolverRegistry::with_builtin();
        let exact: Vec<_> = registry
            .iter()
            .filter(|s| s.is_exact() && s.supports(&tree))
            .map(|s| s.solve(&tree).peak)
            .collect();
        assert!(!exact.is_empty());
        assert!(
            exact.windows(2).all(|w| w[0] == w[1]),
            "exact solvers disagree: {exact:?}"
        );
        for solver in registry.iter().filter(|s| !s.is_exact()) {
            assert!(solver.solve(&tree).peak >= exact[0], "{}", solver.name());
        }
    }

    #[test]
    fn node_limits_gate_the_brute_force() {
        let small = harpoon(3, 30, 1);
        let large = harpoon(30, 300, 1); // 91 nodes
        let brute = BruteForceSolver;
        assert!(brute.supports(&small));
        assert!(!brute.supports(&large));
    }

    #[test]
    fn registration_replaces_by_name() {
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(LiuSolver));
        registry.register(Box::new(LiuSolver));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn solved_peaks_match_their_traversals() {
        let tree = harpoon(4, 40, 3);
        for solver in SolverRegistry::with_builtin()
            .iter()
            .filter(|s| s.supports(&tree))
        {
            let result = solver.solve(&tree);
            assert_eq!(
                result.peak,
                result.traversal.peak_memory(&tree).unwrap(),
                "{}",
                solver.name()
            );
        }
    }
}
