//! # treemem — memory-aware tree traversals for sparse matrix factorization
//!
//! This crate implements the tree-workflow model and the *MinMemory*
//! algorithms of
//!
//! > M. Jacquelin, L. Marchal, Y. Robert, B. Uçar,
//! > *On optimal tree traversals for sparse matrix factorization*, IPDPS 2011.
//!
//! The workflows are rooted trees whose nodes exchange large files.  In the
//! canonical **out-tree** (top-down) orientation used throughout the crate, a
//! node `i` receives an *input file* of size `f(i)` from its parent, needs an
//! *execution file* of size `n(i)` while it runs, and produces one output
//! file per child (of size `f(child)`).  Executing node `i` therefore
//! requires
//!
//! ```text
//! MemReq(i) = f(i) + n(i) + Σ_{j ∈ children(i)} f(j)
//! ```
//!
//! units of main memory on top of the other *frontier* files that are
//! resident (files of nodes whose parent has been executed but which have not
//! been executed themselves).
//!
//! The crate provides:
//!
//! * [`Tree`] — the workflow model, with exact integer sizes;
//! * [`Traversal`] — orderings of the nodes, feasibility checking
//!   (Algorithm 1 of the paper) and peak-memory evaluation;
//! * [`postorder`] — Liu's best postorder traversal (the ordering used by
//!   multifrontal solvers such as MUMPS);
//! * [`minmem`] — the paper's exact `Explore`/`MinMem` algorithms
//!   (Algorithms 3 and 4);
//! * [`liu`] — Liu's 1987 exact algorithm based on hill–valley segments,
//!   used as an independent exact reference;
//! * [`brute`] — an exponential brute-force oracle for small trees;
//! * [`solver`] — the [`MinMemSolver`] trait and [`SolverRegistry`] that
//!   expose all of the above behind one generic interface;
//! * [`variants`] — the model transformations of Section III-C (pebble
//!   replacement, Liu's x⁺/x⁻ model, in-tree ↔ out-tree reversal);
//! * [`gadgets`] — the harpoon trees of Theorem 1 and the 2-Partition
//!   gadget of Theorem 2;
//! * [`partition`] — proportional-mapping-style subtree cuts for parallel
//!   execution (subtree tasks below the cut, a sequential merge above);
//! * [`random`] — random tree generation and the random re-weighting used in
//!   Section VI-E of the paper.
//!
//! The out-of-core counterpart (the *MinIO* problem and its heuristics) lives
//! in the companion `minio` crate.
//!
//! ## Quick example
//!
//! ```
//! use treemem::{Tree, postorder::best_postorder, minmem::min_mem, liu::liu_exact};
//!
//! // A small harpoon: root -> 3 branches (u -> v -> w).
//! let tree = treemem::gadgets::harpoon(3, 300, 1);
//! let po = best_postorder(&tree);
//! let opt = min_mem(&tree);
//! let liu = liu_exact(&tree);
//! assert_eq!(opt.peak, liu.peak);
//! assert!(po.peak >= opt.peak);
//! ```

pub mod brute;
pub mod error;
pub mod faultinject;
pub mod gadgets;
pub mod liu;
pub mod minmem;
pub mod partition;
pub mod postorder;
pub mod random;
pub mod registry;
pub mod solver;
pub mod sync;
pub mod traversal;
pub mod tree;
pub mod variants;

pub use error::{TraversalError, TreeError};
pub use partition::{proportional_cut, Partition};
pub use registry::UnknownName;
pub use solver::{MinMemSolver, SolverRegistry};
pub use traversal::{MemoryProfile, Traversal};
pub use tree::{NodeId, Size, Tree, TreeBuilder};

/// Result of a MinMemory algorithm: the traversal it produced and the peak
/// memory (i.e. the minimum main-memory size for which that traversal is an
/// in-core traversal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraversalResult {
    /// The traversal (top-down order, root first).
    pub traversal: Traversal,
    /// Peak memory of the traversal, in the same units as the file sizes.
    pub peak: Size,
}

impl TraversalResult {
    /// Build a result from a traversal, computing its peak on `tree`.
    ///
    /// # Panics
    /// Panics if the traversal is not a valid topological order of `tree`.
    pub fn from_traversal(tree: &Tree, traversal: Traversal) -> Self {
        let peak = traversal
            .peak_memory(tree)
            .expect("traversal must be a valid topological order");
        Self { traversal, peak }
    }
}
