//! Shared plumbing for the name-indexed catalogues of the workspace.
//!
//! Both [`SolverRegistry`](crate::solver::SolverRegistry) (MinMemory solvers)
//! and `minio::PolicyRegistry` (eviction policies) resolve short stable names
//! to trait objects.  Their lookup APIs share one error type, [`UnknownName`],
//! and one helper, [`get_or_unknown`], so callers — in particular the
//! `engine` facade's configuration validation — get a uniform, typed error
//! that lists the registered names instead of an anonymous `Option` miss.

/// A registry lookup failed: no entry is registered under `name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownName {
    /// What kind of entry was looked up (`"solver"`, `"policy"`, ...).
    pub kind: &'static str,
    /// The name that was requested.
    pub name: String,
    /// Every name the registry does know, in registration order.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownName {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            fmt,
            "unknown {} '{}' (registered: {})",
            self.kind,
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownName {}

/// Turn an optional registry hit into a typed result: `Some(entry)` passes
/// through, `None` becomes an [`UnknownName`] carrying the registered names
/// (produced lazily, so the happy path never allocates).
pub fn get_or_unknown<'a, T: ?Sized>(
    kind: &'static str,
    name: &str,
    entry: Option<&'a T>,
    known: impl FnOnce() -> Vec<String>,
) -> Result<&'a T, UnknownName> {
    entry.ok_or_else(|| UnknownName {
        kind,
        name: name.to_string(),
        known: known(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_pass_through() {
        let value = 7usize;
        let got = get_or_unknown("thing", "seven", Some(&value), Vec::new).unwrap();
        assert_eq!(*got, 7);
    }

    #[test]
    fn misses_carry_the_catalogue() {
        let err =
            get_or_unknown::<usize>("thing", "eight", None, || vec!["seven".into()]).unwrap_err();
        assert_eq!(err.kind, "thing");
        assert_eq!(err.name, "eight");
        assert_eq!(err.known, vec!["seven".to_string()]);
        assert!(err.to_string().contains("unknown thing 'eight'"));
        assert!(err.to_string().contains("seven"));
    }
}
