//! Proportional-mapping-style subtree partitioning for parallel execution.
//!
//! Parallel multifrontal codes exploit *subtree parallelism*: a cut through
//! the assembly tree yields a frontier of disjoint subtrees that touch
//! disjoint sets of contribution blocks and can therefore be factored
//! concurrently, while the nodes above the cut form a sequential *merge*
//! phase that consumes the subtree roots' contribution blocks.
//!
//! [`proportional_cut`] computes such a cut with the classic
//! proportional-mapping refinement loop: starting from the root, the subtree
//! with the largest remaining work estimate is repeatedly replaced by its
//! children until either the frontier is large enough (`max_tasks` subtrees)
//! or the largest subtree is already balanced (no more than
//! `total_work / max_tasks`).  Chains — separator columns in a per-column
//! elimination tree — are popped wholesale, because splitting a chain node
//! keeps the frontier size unchanged, which is exactly the behaviour
//! proportional mapping exhibits on nested-dissection trees.
//!
//! The cut deliberately depends only on the tree, the per-node work
//! estimates and `max_tasks` — *not* on the number of workers — so every
//! worker count schedules the same tasks and a run's partition-derived
//! outputs are bit-identical across worker counts.

use std::collections::BinaryHeap;

use crate::tree::{NodeId, Tree};

/// A cut of a [`Tree`] into parallel subtree tasks plus a sequential merge
/// set; see the module docs and [`proportional_cut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The subtree roots (one per task), sorted by decreasing subtree work
    /// (ties broken by node id), so task 0 is always the heaviest.
    pub roots: Vec<NodeId>,
    /// For every node, the task that owns it (`None` for above-cut nodes).
    pub task_of: Vec<Option<usize>>,
    /// Work estimate of each task (sum of the per-node work over its
    /// subtree), parallel to `roots`.
    pub task_work: Vec<u64>,
    /// The nodes above the cut (the sequential merge phase), in ascending
    /// node-id order.
    pub above_cut: Vec<NodeId>,
}

impl Partition {
    /// Number of subtree tasks.
    pub fn task_count(&self) -> usize {
        self.roots.len()
    }

    /// Work of the sequential merge phase.
    pub fn merge_work(&self, work: &[u64]) -> u64 {
        self.above_cut.iter().map(|&i| work[i]).sum()
    }

    /// Split a bottom-up node `order` into one per-task sub-order plus the
    /// above-cut merge order, preserving `order`'s relative sequence inside
    /// every piece.  Because each task owns a whole subtree and `order` is
    /// bottom-up, every piece is itself a valid bottom-up traversal of its
    /// node subset — this is the splitter both the in-process parallel
    /// executor and the distributed coordinator use, so the two schedule the
    /// exact same column sequences.
    ///
    /// # Panics
    /// Panics if `order.len() != self.task_of.len()`.
    pub fn split_order(&self, order: &[usize]) -> (Vec<Vec<usize>>, Vec<usize>) {
        assert_eq!(
            order.len(),
            self.task_of.len(),
            "one order entry per partitioned node"
        );
        let mut task_orders: Vec<Vec<usize>> = vec![Vec::new(); self.task_count()];
        let mut merge_order: Vec<usize> = Vec::with_capacity(self.above_cut.len());
        for &node in order {
            match self.task_of[node] {
                Some(task) => task_orders[task].push(node),
                None => merge_order.push(node),
            }
        }
        (task_orders, merge_order)
    }
}

/// A default per-node work estimate: `max(f(i) + n(i), 1)`.  For the
/// numeric per-column model, where `f + n = µ²`, this is proportional to the
/// flop count of eliminating the column.
pub fn default_node_work(tree: &Tree) -> Vec<u64> {
    tree.nodes()
        .map(|i| (tree.f(i) + tree.n(i)).max(1) as u64)
        .collect()
}

/// Heap entry ordered by subtree work, ties broken towards the *smaller*
/// node id (so the pop order, and hence the cut, is deterministic).
#[derive(PartialEq, Eq)]
struct Candidate {
    work: u64,
    node: NodeId,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.work
            .cmp(&other.work)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Cut `tree` into at most `max_tasks` subtree tasks balanced by `work`
/// (one estimate per node); see the module docs.
///
/// # Panics
/// Panics if `work.len() != tree.len()`.
pub fn proportional_cut(tree: &Tree, max_tasks: usize, work: &[u64]) -> Partition {
    assert_eq!(work.len(), tree.len(), "one work estimate per node");
    let max_tasks = max_tasks.max(1);

    // Subtree work, bottom-up.
    let mut subtree_work: Vec<u64> = work.to_vec();
    for &i in &tree.dfs_bottomup() {
        if let Some(parent) = tree.parent(i) {
            subtree_work[parent] = subtree_work[parent].saturating_add(subtree_work[i]);
        }
    }
    let total: u64 = subtree_work[tree.root()];
    let balanced = total / max_tasks as u64;

    let mut frontier = BinaryHeap::new();
    frontier.push(Candidate {
        work: subtree_work[tree.root()],
        node: tree.root(),
    });
    let mut above_cut: Vec<NodeId> = Vec::new();
    while frontier.len() < max_tasks {
        let Some(top) = frontier.peek() else { break };
        // The largest subtree is already balanced (or unsplittable): every
        // other frontier subtree is at most as large, so the cut is done.
        if top.work <= balanced || tree.is_leaf(top.node) {
            break;
        }
        let top = frontier.pop().expect("peeked entry exists");
        above_cut.push(top.node);
        for &child in tree.children(top.node) {
            frontier.push(Candidate {
                work: subtree_work[child],
                node: child,
            });
        }
    }

    // Largest-first task order, deterministic by (work desc, id asc).
    let mut roots: Vec<NodeId> = frontier.into_iter().map(|c| c.node).collect();
    roots.sort_unstable_by(|&a, &b| {
        subtree_work[b]
            .cmp(&subtree_work[a])
            .then_with(|| a.cmp(&b))
    });
    let task_work: Vec<u64> = roots.iter().map(|&r| subtree_work[r]).collect();

    // Ownership: depth-first from each root.
    let mut task_of: Vec<Option<usize>> = vec![None; tree.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for (task, &root) in roots.iter().enumerate() {
        stack.push(root);
        while let Some(i) = stack.pop() {
            task_of[i] = Some(task);
            stack.extend_from_slice(tree.children(i));
        }
    }
    above_cut.sort_unstable();

    debug_assert_eq!(
        task_of.iter().filter(|t| t.is_none()).count(),
        above_cut.len()
    );
    Partition {
        roots,
        task_of,
        task_work,
        above_cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::nested_dissection_etree;
    use crate::tree::TreeBuilder;

    fn balanced_binary(levels: usize) -> Tree {
        let mut b = TreeBuilder::new();
        let root = b.add_root(1, 1);
        let mut frontier = vec![root];
        for _ in 0..levels {
            let mut next = Vec::new();
            for parent in frontier {
                next.push(b.add_child(parent, 1, 1));
                next.push(b.add_child(parent, 1, 1));
            }
            frontier = next;
        }
        b.build().unwrap()
    }

    #[test]
    fn single_task_is_the_whole_tree() {
        let tree = balanced_binary(3);
        let partition = proportional_cut(&tree, 1, &default_node_work(&tree));
        assert_eq!(partition.roots, vec![tree.root()]);
        assert!(partition.above_cut.is_empty());
        assert!(partition.task_of.iter().all(|t| *t == Some(0)));
    }

    #[test]
    fn every_node_is_owned_exactly_once() {
        let tree = nested_dissection_etree(5_000, 7);
        let work = default_node_work(&tree);
        for max_tasks in [1, 2, 4, 8, 64] {
            let partition = proportional_cut(&tree, max_tasks, &work);
            assert!(partition.task_count() >= 1);
            assert!(partition.task_count() <= max_tasks.max(1));
            let owned: usize = partition
                .task_of
                .iter()
                .filter(|task| task.is_some())
                .count();
            assert_eq!(owned + partition.above_cut.len(), tree.len());
            // Tasks cover full subtrees: a node's task equals its parent's
            // unless the parent is above the cut.
            for i in tree.nodes() {
                if let (Some(task), Some(parent)) = (partition.task_of[i], tree.parent(i)) {
                    if let Some(parent_task) = partition.task_of[parent] {
                        assert_eq!(task, parent_task);
                    } else {
                        assert!(partition.roots.contains(&i));
                    }
                }
            }
            // Above-cut nodes are ancestors of every task root below them.
            for &above in &partition.above_cut {
                assert_eq!(partition.task_of[above], None);
            }
            // Task work plus merge work covers the whole tree.
            let task_sum: u64 = partition.task_work.iter().sum();
            let total: u64 = work.iter().sum();
            assert_eq!(task_sum + partition.merge_work(&work), total);
        }
    }

    #[test]
    fn tasks_come_out_largest_first_and_balanced() {
        let tree = balanced_binary(6); // 127 nodes, uniform work
        let work = default_node_work(&tree);
        let partition = proportional_cut(&tree, 8, &work);
        assert_eq!(partition.task_count(), 8);
        for pair in partition.task_work.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        // A uniform balanced binary tree splits into the 8 depth-3 subtrees.
        let total: u64 = work.iter().sum();
        assert!(partition.task_work[0] <= total / 8 + 1);
        assert_eq!(partition.above_cut.len(), 7);
    }

    #[test]
    fn chains_are_popped_wholesale() {
        // A chain of 10 over a 4-leaf star: the cut must pop the whole chain
        // to reach the branching point.
        let mut b = TreeBuilder::new();
        let mut node = b.add_root(1, 1);
        for _ in 0..9 {
            node = b.add_child(node, 1, 1);
        }
        for _ in 0..4 {
            let child = b.add_child(node, 1, 100);
            b.add_child(child, 1, 100);
        }
        let tree = b.build().unwrap();
        let partition = proportional_cut(&tree, 4, &default_node_work(&tree));
        assert_eq!(partition.task_count(), 4);
        assert_eq!(partition.above_cut.len(), 10);
    }

    #[test]
    fn cut_is_deterministic_and_worker_independent() {
        let tree = nested_dissection_etree(2_000, 3);
        let work = default_node_work(&tree);
        let a = proportional_cut(&tree, 16, &work);
        let b = proportional_cut(&tree, 16, &work);
        assert_eq!(a, b);
    }

    #[test]
    fn split_order_partitions_a_bottom_up_order_without_reordering() {
        let tree = nested_dissection_etree(2_000, 11);
        let work = default_node_work(&tree);
        let partition = proportional_cut(&tree, 8, &work);
        let order = tree.dfs_bottomup();
        let (task_orders, merge_order) = partition.split_order(&order);
        assert_eq!(task_orders.len(), partition.task_count());
        // The merge order is the above-cut set in source-order sequence.
        let expected_merge: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&node| partition.task_of[node].is_none())
            .collect();
        assert_eq!(merge_order, expected_merge);
        {
            let mut sorted = merge_order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, partition.above_cut);
        }
        // Every node appears exactly once across the pieces.
        let mut seen = vec![false; tree.len()];
        for piece in task_orders.iter().chain(std::iter::once(&merge_order)) {
            for &node in piece {
                assert!(!seen[node], "node {node} split into two pieces");
                seen[node] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Each piece preserves the relative sequence of the source order.
        let position: Vec<usize> = {
            let mut p = vec![0usize; tree.len()];
            for (at, &node) in order.iter().enumerate() {
                p[node] = at;
            }
            p
        };
        for piece in task_orders.iter().chain(std::iter::once(&merge_order)) {
            for pair in piece.windows(2) {
                assert!(position[pair[0]] < position[pair[1]]);
            }
        }
        // And each task piece covers exactly its owned nodes.
        for (task, piece) in task_orders.iter().enumerate() {
            let owned = partition
                .task_of
                .iter()
                .filter(|&&t| t == Some(task))
                .count();
            assert_eq!(piece.len(), owned);
        }
    }

    #[test]
    fn leaf_frontier_stops_splitting() {
        // A star: the root's children are all leaves; asking for more tasks
        // than leaves must not loop or panic.
        let mut b = TreeBuilder::new();
        let root = b.add_root(1, 1);
        for _ in 0..3 {
            b.add_child(root, 1, 1);
        }
        let tree = b.build().unwrap();
        let partition = proportional_cut(&tree, 64, &default_node_work(&tree));
        assert_eq!(partition.task_count(), 3);
        assert_eq!(partition.above_cut, vec![tree.root()]);
    }
}
