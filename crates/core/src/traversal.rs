//! Traversals of a tree workflow and their memory behaviour.
//!
//! A [`Traversal`] is an ordering of the nodes of a [`Tree`].  It is *valid*
//! when every node appears exactly once and after its parent
//! (Equation (2) of the paper).  For a valid traversal the resident memory at
//! every instant is fully determined, and this module computes it exactly:
//!
//! * [`Traversal::check_in_core`] is Algorithm 1 of the paper: given a memory
//!   size `M`, decide whether the traversal can be executed fully in core;
//! * [`Traversal::peak_memory`] returns the smallest such `M`;
//! * [`Traversal::memory_profile`] returns the step-by-step memory usage,
//!   which is also the basis of the hill–valley representation used by Liu's
//!   exact algorithm.

use crate::error::TraversalError;
use crate::tree::{NodeId, Size, Tree};

/// An ordering of the nodes of a tree (top-down: the root is executed first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traversal {
    order: Vec<NodeId>,
}

/// Memory usage of one step of a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStep {
    /// The node executed at this step.
    pub node: NodeId,
    /// Memory resident *while* the node executes (frontier + execution file +
    /// output files).
    pub during: Size,
    /// Memory resident after the node has executed (frontier files only).
    pub after: Size,
}

/// Step-by-step memory usage of a traversal; see [`Traversal::memory_profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryProfile {
    /// One entry per executed node, in traversal order.
    pub steps: Vec<MemoryStep>,
}

impl MemoryProfile {
    /// The peak memory of the traversal: the largest `during` value
    /// (at least the size of the root input file).
    pub fn peak(&self) -> Size {
        self.steps.iter().map(|s| s.during).max().unwrap_or(0)
    }

    /// Memory resident after the last step (0 for a complete traversal of a
    /// tree whose leaves produce nothing).
    pub fn final_residency(&self) -> Size {
        self.steps.last().map(|s| s.after).unwrap_or(0)
    }
}

impl Traversal {
    /// Wrap an explicit node ordering.
    pub fn new(order: Vec<NodeId>) -> Self {
        Traversal { order }
    }

    /// The node ordering (first executed node first).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of scheduled nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the traversal is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Consume the traversal and return the underlying ordering.
    pub fn into_order(self) -> Vec<NodeId> {
        self.order
    }

    /// Position of each node in the traversal: `positions[i] = σ(i) - 1`.
    ///
    /// Returns an error if the traversal is not a permutation of `0..len`.
    pub fn positions(&self, num_nodes: usize) -> Result<Vec<usize>, TraversalError> {
        if self.order.len() != num_nodes {
            return Err(TraversalError::WrongLength {
                expected: num_nodes,
                found: self.order.len(),
            });
        }
        let mut pos = vec![usize::MAX; num_nodes];
        for (step, &node) in self.order.iter().enumerate() {
            if node >= num_nodes || pos[node] != usize::MAX {
                return Err(TraversalError::NotAPermutation);
            }
            pos[node] = step;
        }
        Ok(pos)
    }

    /// Check that the traversal visits every node exactly once and never
    /// schedules a node before its parent (Equation (2)).
    pub fn check_precedence(&self, tree: &Tree) -> Result<(), TraversalError> {
        let pos = self.positions(tree.len())?;
        for i in tree.nodes() {
            if let Some(par) = tree.parent(i) {
                if pos[par] >= pos[i] {
                    return Err(TraversalError::PrecedenceViolation {
                        node: i,
                        parent: par,
                    });
                }
            }
        }
        Ok(())
    }

    /// Algorithm 1 of the paper: check whether the traversal is a feasible
    /// in-core traversal with main memory `memory`.
    ///
    /// Returns `Ok(())` on success and the first violation otherwise.
    pub fn check_in_core(&self, tree: &Tree, memory: Size) -> Result<(), TraversalError> {
        let profile = self.memory_profile(tree)?;
        for (step, s) in profile.steps.iter().enumerate() {
            if s.during > memory {
                return Err(TraversalError::OutOfMemory {
                    step,
                    node: s.node,
                    required: s.during,
                    available: memory,
                });
            }
        }
        Ok(())
    }

    /// Smallest main-memory size for which this traversal is feasible in
    /// core, i.e. its peak memory.
    pub fn peak_memory(&self, tree: &Tree) -> Result<Size, TraversalError> {
        Ok(self.memory_profile(tree)?.peak())
    }

    /// Compute the exact memory usage of every step of the traversal.
    ///
    /// The resident memory between steps is the total size of the *frontier*
    /// files: input files of nodes whose parent has been executed but which
    /// have not been executed themselves (the root input file is initially
    /// resident).  While node `i` executes, its execution file and the input
    /// files of its children are resident as well.
    pub fn memory_profile(&self, tree: &Tree) -> Result<MemoryProfile, TraversalError> {
        self.check_precedence(tree)?;
        let mut resident = tree.f(tree.root());
        let mut steps = Vec::with_capacity(self.order.len());
        for &i in &self.order {
            let children_sum = tree.children_file_sum(i);
            let during = resident + tree.n(i) + children_sum;
            let after = resident - tree.f(i) + children_sum;
            steps.push(MemoryStep {
                node: i,
                during,
                after,
            });
            resident = after;
        }
        Ok(MemoryProfile { steps })
    }

    /// Reverse the traversal.  By the in-tree ↔ out-tree equivalence of
    /// Section III-C of the paper, the reverse of a valid bottom-up traversal
    /// of the same tree (interpreted as an in-tree) is a valid top-down
    /// traversal with the same peak memory, and vice versa.
    pub fn reversed(&self) -> Traversal {
        let mut order = self.order.clone();
        order.reverse();
        Traversal::new(order)
    }
}

impl From<Vec<NodeId>> for Traversal {
    fn from(order: Vec<NodeId>) -> Self {
        Traversal::new(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    /// Root with two branches: root -> a(2) -> b(6), root -> c(3) -> d(4).
    fn two_branches() -> (Tree, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut builder = TreeBuilder::new();
        let r = builder.add_root(1, 0);
        let a = builder.add_child(r, 2, 0);
        let b = builder.add_child(a, 6, 0);
        let c = builder.add_child(r, 3, 0);
        let d = builder.add_child(c, 4, 0);
        (builder.build().unwrap(), r, a, b, c, d)
    }

    #[test]
    fn profile_of_a_chain() {
        let mut builder = TreeBuilder::new();
        let r = builder.add_root(1, 10);
        let a = builder.add_child(r, 2, 0);
        let b = builder.add_child(a, 3, 5);
        let tree = builder.build().unwrap();
        let tr = Traversal::new(vec![r, a, b]);
        let profile = tr.memory_profile(&tree).unwrap();
        // root: resident 1, during 1 + 10 + 2 = 13, after 2.
        // a:    during 2 + 0 + 3 = 5, after 3.
        // b:    during 3 + 5 = 8, after 0.
        assert_eq!(
            profile.steps,
            vec![
                MemoryStep {
                    node: r,
                    during: 13,
                    after: 2
                },
                MemoryStep {
                    node: a,
                    during: 5,
                    after: 3
                },
                MemoryStep {
                    node: b,
                    during: 8,
                    after: 0
                },
            ]
        );
        assert_eq!(profile.peak(), 13);
        assert_eq!(profile.final_residency(), 0);
        assert_eq!(tr.peak_memory(&tree).unwrap(), 13);
        assert!(tr.check_in_core(&tree, 13).is_ok());
        assert_eq!(
            tr.check_in_core(&tree, 12),
            Err(TraversalError::OutOfMemory {
                step: 0,
                node: r,
                required: 13,
                available: 12
            })
        );
    }

    #[test]
    fn interleaving_branches_changes_the_peak() {
        let (tree, r, a, b, c, d) = two_branches();
        // Process branch (a, b) fully first: while b runs, c's file (3) is resident.
        let postorder_like = Traversal::new(vec![r, a, b, c, d]);
        // Interleave: run a and c first (reducing 2->6? no: a produces 6).
        let other = Traversal::new(vec![r, c, d, a, b]);
        let p1 = postorder_like.peak_memory(&tree).unwrap();
        let p2 = other.peak_memory(&tree).unwrap();
        // Branch (a, b) first: while a runs, c's file (3) is still resident:
        // 2 + 6 + 3 = 11.
        assert_eq!(p1, 11);
        // Branch (c, d) first: the worst step is c (resident 2 + 3, output 4),
        // then a only sees an empty right branch: peak 9.
        assert_eq!(p2, 9);
    }

    #[test]
    fn precedence_violations_are_reported() {
        let (tree, r, a, b, _c, _d) = two_branches();
        let bad = Traversal::new(vec![r, b, a, 3, 4]);
        assert_eq!(
            bad.check_precedence(&tree),
            Err(TraversalError::PrecedenceViolation { node: b, parent: a })
        );
        let not_perm = Traversal::new(vec![r, a, a, 3, 4]);
        assert_eq!(
            not_perm.check_precedence(&tree),
            Err(TraversalError::NotAPermutation)
        );
        let short = Traversal::new(vec![r, a]);
        assert_eq!(
            short.check_precedence(&tree),
            Err(TraversalError::WrongLength {
                expected: 5,
                found: 2
            })
        );
    }

    #[test]
    fn positions_inverts_the_order() {
        let (tree, r, a, b, c, d) = two_branches();
        let tr = Traversal::new(vec![r, c, a, d, b]);
        let pos = tr.positions(tree.len()).unwrap();
        assert_eq!(pos[r], 0);
        assert_eq!(pos[c], 1);
        assert_eq!(pos[b], 4);
        assert_eq!(pos[a], 2);
        assert_eq!(pos[d], 3);
    }

    #[test]
    fn reversed_round_trips() {
        let tr = Traversal::new(vec![0, 2, 1]);
        assert_eq!(tr.reversed().order(), &[1, 2, 0]);
        assert_eq!(tr.reversed().reversed(), tr);
    }

    #[test]
    fn negative_execution_sizes_reduce_the_peak() {
        // Replacement-model style node: n = -min(f, children sum).
        let mut builder = TreeBuilder::new();
        let r = builder.add_root(5, -5);
        let a = builder.add_child(r, 7, 0);
        let tree = builder.build().unwrap();
        let tr = Traversal::new(vec![r, a]);
        // during root: 5 - 5 + 7 = 7 (replacement semantics: max(f, out) = 7).
        assert_eq!(tr.peak_memory(&tree).unwrap(), 7);
    }
}
