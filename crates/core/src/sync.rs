//! Poison-tolerant, lock-order-checked mutexes for the shared structures.
//!
//! Every long-lived shared structure in the workspace (`BudgetLedger`,
//! `PlanCache`, `FactorCache`, `JobRegistry`, the server stats recorders)
//! guards its state with a [`TrackedMutex`] instead of a bare
//! [`std::sync::Mutex`]. The wrapper changes two things:
//!
//! 1. **Poison tolerance.** [`TrackedMutex::lock`] never panics on a
//!    poisoned mutex: it recovers the guard with
//!    `unwrap_or_else(PoisonError::into_inner)`. All of these structures
//!    maintain their invariants *before* releasing the guard (counters are
//!    updated with saturating arithmetic, entries are inserted whole), so a
//!    panic that unwound through a critical section leaves valid — merely
//!    possibly stale — state. Propagating the poison would instead convert
//!    one contained panic into a process-wide denial of service, which is
//!    exactly what the serving path's "zero non-injected 5xx" invariant
//!    forbids.
//!
//! 2. **Lock-order checking** (debug builds only). Each mutex carries a
//!    static *class* name. Under `debug_assertions`, every acquisition
//!    records the edge `held-class -> acquired-class` into a process-wide
//!    acquisition-order graph and panics immediately if the new edge closes
//!    a cycle — the canonical AB/BA deadlock — naming both lock classes and
//!    the path between them. The existing unit and stress tests thereby
//!    double as lock-order model checks: any test that merely *executes* an
//!    inconsistent nesting fails deterministically, even if the interleaving
//!    needed for the real deadlock never happens on that run. Release builds
//!    compile the tracking away entirely.
//!
//! Condvar integration: blocking on a [`std::sync::Condvar`] releases the
//! OS mutex, but [`TrackedCondvar::wait`] deliberately keeps the class in
//! the thread's held set — the blocked thread cannot acquire anything else
//! while parked, and on wakeup it holds the lock again without re-running
//! the order check (the wakeup re-acquisition order is dictated by the OS,
//! not by the code under test).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A mutex with a named lock class, poison tolerance, and (in debug builds)
/// global acquisition-order cycle detection.
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    class: &'static str,
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt.debug_struct("TrackedMutex")
            .field("class", &self.class)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for a [`TrackedMutex`]; releases the class from the thread's
/// held set on drop.
pub struct TrackedGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    class: &'static str,
}

impl<T> TrackedMutex<T> {
    /// Create a mutex belonging to lock class `class`. Every instance
    /// guarding the same kind of structure should share one class name
    /// (e.g. `"plan-cache.entries"`), because the order graph is built over
    /// classes, not instances.
    pub fn new(value: T, class: &'static str) -> Self {
        TrackedMutex {
            inner: Mutex::new(value),
            class,
        }
    }

    /// Acquire the lock, recovering from poison, and (debug builds) check
    /// the acquisition against the global lock-order graph.
    ///
    /// # Panics
    /// In debug builds, panics if acquiring this class while holding the
    /// locks this thread currently holds closes a cycle in the
    /// acquisition-order graph.
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        order::on_acquire(self.class);
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        TrackedGuard {
            guard: Some(guard),
            class: self.class,
        }
    }

    /// The lock-class name this mutex was created with.
    pub fn class(&self) -> &'static str {
        self.class
    }
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .unwrap_or_else(|| unreachable!("guard present until drop"))
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .unwrap_or_else(|| unreachable!("guard present until drop"))
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            order::on_release(self.class);
        }
    }
}

/// Condvar companion to [`TrackedMutex`]: same API shape as
/// [`std::sync::Condvar`] but consumes and returns [`TrackedGuard`]s and is
/// poison-tolerant.
pub struct TrackedCondvar {
    inner: Condvar,
}

impl std::fmt::Debug for TrackedCondvar {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt.debug_struct("TrackedCondvar").finish_non_exhaustive()
    }
}

impl TrackedCondvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        TrackedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Block until notified. The guard's lock class stays in the thread's
    /// held set for the duration of the wait (see module docs).
    pub fn wait<'a, T>(&self, mut guard: TrackedGuard<'a, T>) -> TrackedGuard<'a, T> {
        let class = guard.class;
        let inner = guard
            .guard
            .take()
            .unwrap_or_else(|| unreachable!("guard present until drop"));
        // `guard` now drops without releasing the class: the wait re-acquires
        // the same lock before returning.
        drop(guard);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        TrackedGuard {
            guard: Some(inner),
            class,
        }
    }

    /// Block until notified or `timeout` elapses. The boolean is true when
    /// the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: TrackedGuard<'a, T>,
        timeout: Duration,
    ) -> (TrackedGuard<'a, T>, bool) {
        let class = guard.class;
        let inner = guard
            .guard
            .take()
            .unwrap_or_else(|| unreachable!("guard present until drop"));
        drop(guard);
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (
            TrackedGuard {
                guard: Some(inner),
                class,
            },
            result.timed_out(),
        )
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(debug_assertions)]
mod order {
    //! The global acquisition-order graph, compiled only into debug builds.

    use std::cell::RefCell;
    use std::sync::{Mutex, OnceLock, PoisonError};

    struct Graph {
        /// Registered class names; index is the class id.
        classes: Vec<&'static str>,
        /// `edges[a]` holds every class id acquired while `a` was held.
        edges: Vec<Vec<usize>>,
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| {
            Mutex::new(Graph {
                classes: Vec::new(),
                edges: Vec::new(),
            })
        })
    }

    thread_local! {
        /// Class ids of the locks this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    fn class_id(graph: &mut Graph, class: &'static str) -> usize {
        if let Some(id) = graph.classes.iter().position(|c| *c == class) {
            return id;
        }
        graph.classes.push(class);
        graph.edges.push(Vec::new());
        graph.classes.len() - 1
    }

    /// Is `to` reachable from `from` over recorded acquisition edges?
    /// Returns the path when it is.
    fn path(graph: &Graph, from: usize, to: usize) -> Option<Vec<usize>> {
        let mut prev: Vec<Option<usize>> = vec![None; graph.classes.len()];
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = vec![false; graph.classes.len()];
        seen[from] = true;
        while let Some(node) = queue.pop_front() {
            if node == to {
                let mut p = vec![to];
                let mut cur = to;
                while let Some(parent) = prev[cur] {
                    p.push(parent);
                    if parent == from {
                        break;
                    }
                    cur = parent;
                }
                p.reverse();
                return Some(p);
            }
            for &next in &graph.edges[node] {
                if !seen[next] {
                    seen[next] = true;
                    prev[next] = Some(node);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    pub fn on_acquire(class: &'static str) {
        let held: Vec<usize> = HELD.with(|h| h.borrow().clone());
        // Record edges and detect cycles outside the thread-local borrow so a
        // panic here cannot double-borrow.
        let mut cycle: Option<String> = None;
        {
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            let id = class_id(&mut g, class);
            if held.contains(&id) {
                cycle = Some(format!(
                    "lock-order violation: thread already holds `{class}` and is \
                     acquiring it again (same-class nesting deadlocks against a \
                     second thread)"
                ));
            } else {
                // Check for a cycle BEFORE recording the new edges: a failed
                // acquisition must not contaminate the graph, otherwise the
                // consistent order becomes unusable after one violation.
                for &h in &held {
                    if let Some(p) = path(&g, id, h) {
                        let names: Vec<&str> = p.iter().map(|&i| g.classes[i]).collect();
                        cycle = Some(format!(
                            "lock-order violation: acquiring `{class}` while holding \
                             `{}` closes the cycle {} -> {}",
                            g.classes[h],
                            names.join(" -> "),
                            class
                        ));
                        break;
                    }
                }
                if cycle.is_none() {
                    for &h in &held {
                        if !g.edges[h].contains(&id) {
                            g.edges[h].push(id);
                        }
                    }
                }
            }
            if cycle.is_none() {
                HELD.with(|held| held.borrow_mut().push(id));
            }
        }
        if let Some(message) = cycle {
            panic!("{message}");
        }
    }

    pub fn on_release(class: &'static str) {
        let id = {
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            class_id(&mut g, class)
        };
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == id) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(not(debug_assertions))]
mod order {
    //! Release builds: lock tracking compiles to nothing.

    #[inline(always)]
    pub fn on_acquire(_class: &'static str) {}

    #[inline(always)]
    pub fn on_release(_class: &'static str) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = TrackedMutex::new(0u64, "test.basic");
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn poison_is_tolerated() {
        let m = Arc::new(TrackedMutex::new(7u64, "test.poison"));
        let m2 = Arc::clone(&m);
        let result = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert!(result.is_err());
        // A bare std Mutex would now panic on .lock().unwrap(); the tracked
        // one recovers the value.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_roundtrip() {
        let m = Arc::new(TrackedMutex::new(false, "test.condvar"));
        let cv = Arc::new(TrackedCondvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut guard = m2.lock();
            while !*guard {
                guard = cv2.wait(guard);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().expect("waiter thread panicked"));
    }

    #[test]
    fn condvar_wait_timeout_reports_timeout() {
        let m = TrackedMutex::new((), "test.condvar-timeout");
        let cv = TrackedCondvar::new();
        let guard = m.lock();
        let (_guard, timed_out) = cv.wait_timeout(guard, Duration::from_millis(5));
        assert!(timed_out);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn ab_ba_cycle_panics() {
        // The graph is global and keyed by class name, so this test uses
        // names no other test (or production code) uses.
        let a = Arc::new(TrackedMutex::new((), "test.cycle-a"));
        let b = Arc::new(TrackedMutex::new((), "test.cycle-b"));
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records a -> b
        }
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let result = std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock(); // b -> a closes the cycle
        })
        .join();
        let err = result.expect_err("reversed acquisition order must panic");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("lock-order violation"),
            "unexpected panic: {message}"
        );
        // The failed acquisition must not leak into the held set: the same
        // thread can still use consistent order afterwards.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_class_nesting_panics() {
        let m = Arc::new(TrackedMutex::new((), "test.self-nest"));
        let m2 = Arc::clone(&m);
        let result = std::thread::spawn(move || {
            let _g1 = m2.lock();
            let _g2 = m2.lock();
        })
        .join();
        assert!(result.is_err());
    }

    #[test]
    fn consistent_order_across_threads_is_fine() {
        let a = Arc::new(TrackedMutex::new(0u64, "test.order-a"));
        let b = Arc::new(TrackedMutex::new(0u64, "test.order-b"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    *ga += 1;
                    *gb += 1;
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert_eq!(*a.lock(), 400);
        assert_eq!(*b.lock(), 400);
    }
}
