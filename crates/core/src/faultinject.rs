//! Process-wide fault injection for the chaos harness.
//!
//! A *fault plan* is a small list of rules, each naming an instrumented
//! *fault point* (a stable string like `plan:ordering` or `arena:alloc`),
//! the 1-based hit count at which it fires, and an action:
//!
//! * `panic` — panic at the fault point (exercises unwind paths: the
//!   single-flight plan cache, the worker-pool `catch_unwind`, the server's
//!   per-request panic fence);
//! * `sleep:MS` — stall the fault point for `MS` milliseconds (exercises
//!   deadlines and cancellation);
//! * `drop` — ask the call site to drop the unit of work it was about to
//!   perform (a subtree task, an arena allocation); each site documents how
//!   it interprets the signal.
//!
//! The plan lives in a process-global registry so the serving stack needs no
//! plumbing: production code calls [`fire`] at its fault points, and the
//! disarmed fast path is a single relaxed atomic load.  Plans are installed
//! programmatically ([`install`]) by the in-process chaos harness, or parsed
//! from a spec string ([`parse_plan`], format
//! `action@point#nth[,action@point#nth...]`) handed to `serve` via the
//! `TREEMEM_FAULT_PLAN` environment variable.
//!
//! This module is a *testing* facility: nothing in the repo installs a plan
//! outside the chaos scenario and the regression tests, and an empty plan
//! costs one atomic load per fault point.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed rule does when its hit count is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a recognisable `faultinject:` message.
    Panic,
    /// Sleep for this many milliseconds, then continue.
    SleepMs(u64),
    /// Tell the call site to drop the unit of work (site-defined meaning).
    Drop,
}

/// One rule of a fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The instrumented fault point this rule arms.
    pub point: String,
    /// Fire on the `nth` hit of the point (1-based; 1 = first hit).
    pub nth: u64,
    /// What to do when it fires.
    pub action: FaultAction,
}

struct RuleState {
    rule: FaultRule,
    hits: u64,
    fired: bool,
}

/// What [`fire`] tells the call site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSignal {
    /// No armed rule fired: proceed normally.
    Continue,
    /// A `drop` rule fired: drop the unit of work.
    Drop,
}

/// Fast-path guard: `false` means no plan is installed and [`fire`] is one
/// relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Total faults injected (panics, sleeps, and drops) since the last
/// [`install`].
static INJECTED: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Vec<RuleState>> = Mutex::new(Vec::new());

/// Install `rules` as the process-wide fault plan, replacing any previous
/// plan and resetting hit counters and the injected-fault count.
pub fn install(rules: Vec<FaultRule>) {
    let mut plan = PLAN.lock().expect("fault plan poisoned");
    *plan = rules
        .into_iter()
        .map(|rule| RuleState {
            rule,
            hits: 0,
            fired: false,
        })
        .collect();
    INJECTED.store(0, Ordering::Relaxed);
    ARMED.store(!plan.is_empty(), Ordering::Release);
}

/// Remove the fault plan; every [`fire`] reverts to the one-load fast path.
pub fn clear() {
    install(Vec::new());
}

/// Number of faults injected since the current plan was installed.
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Hit the fault point `point`.  Returns immediately when no plan is armed;
/// otherwise counts the hit against every rule naming this point and
/// performs the first action whose `nth` is reached.  Call sites must honor
/// [`FaultSignal::Drop`]; `panic` and `sleep` happen right here.
///
/// # Panics
/// Panics (deliberately) when a `panic` rule fires.
pub fn fire(point: &str) -> FaultSignal {
    if !ARMED.load(Ordering::Acquire) {
        return FaultSignal::Continue;
    }
    let action = {
        let mut plan = PLAN.lock().expect("fault plan poisoned");
        let mut action = None;
        for state in plan.iter_mut() {
            if state.rule.point != point {
                continue;
            }
            state.hits += 1;
            if !state.fired && state.hits >= state.rule.nth {
                state.fired = true;
                action = Some(state.rule.action);
                break;
            }
        }
        action
    };
    match action {
        None => FaultSignal::Continue,
        Some(FaultAction::Panic) => {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            panic!("faultinject: injected panic at {point}");
        }
        Some(FaultAction::SleepMs(ms)) => {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(ms));
            FaultSignal::Continue
        }
        Some(FaultAction::Drop) => {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            FaultSignal::Drop
        }
    }
}

/// Parse a plan spec: comma-separated rules of the form `action@point#nth`,
/// where `action` is `panic`, `sleep:MS`, or `drop`, and `#nth` is optional
/// (default 1).  Example:
/// `sleep:40@plan:ordering,panic@execute:numeric#2,drop@arena:alloc#3`.
pub fn parse_plan(spec: &str) -> Result<Vec<FaultRule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let part = part.trim();
        let (action_text, rest) = part
            .split_once('@')
            .ok_or_else(|| format!("rule `{part}` has no `@point`"))?;
        let (point, nth) = match rest.rsplit_once('#') {
            Some((point, nth)) => (
                point,
                nth.parse::<u64>()
                    .map_err(|_| format!("rule `{part}` has a bad hit count `{nth}`"))?,
            ),
            None => (rest, 1),
        };
        if point.is_empty() || nth == 0 {
            return Err(format!("rule `{part}` needs a point and a 1-based count"));
        }
        let action = if action_text == "panic" {
            FaultAction::Panic
        } else if action_text == "drop" {
            FaultAction::Drop
        } else if let Some(ms) = action_text.strip_prefix("sleep:") {
            FaultAction::SleepMs(
                ms.parse()
                    .map_err(|_| format!("rule `{part}` has a bad sleep duration `{ms}`"))?,
            )
        } else {
            return Err(format!(
                "rule `{part}` has unknown action `{action_text}` \
                 (expected panic, sleep:MS, or drop)"
            ));
        };
        rules.push(FaultRule {
            point: point.to_string(),
            nth,
            action,
        });
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so these tests serialise on a lock and
    // use point names no production call site fires.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn parses_a_full_plan() {
        let rules = parse_plan("sleep:40@plan:ordering,panic@execute:numeric#2,drop@x#3").unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].action, FaultAction::SleepMs(40));
        assert_eq!(rules[0].nth, 1);
        assert_eq!(rules[1].point, "execute:numeric");
        assert_eq!(rules[1].nth, 2);
        assert_eq!(rules[2].action, FaultAction::Drop);
        assert!(parse_plan("boom@x").is_err());
        assert!(parse_plan("panic").is_err());
        assert!(parse_plan("panic@x#0").is_err());
        assert!(parse_plan("").unwrap().is_empty());
    }

    #[test]
    fn drop_fires_on_the_nth_hit_once() {
        let _guard = TEST_GUARD.lock().unwrap();
        install(parse_plan("drop@test:unit-drop#3").unwrap());
        assert_eq!(fire("test:unit-drop"), FaultSignal::Continue);
        assert_eq!(fire("test:other"), FaultSignal::Continue);
        assert_eq!(fire("test:unit-drop"), FaultSignal::Continue);
        assert_eq!(fire("test:unit-drop"), FaultSignal::Drop);
        // A rule fires once, not on every later hit.
        assert_eq!(fire("test:unit-drop"), FaultSignal::Continue);
        assert_eq!(injected(), 1);
        clear();
        assert_eq!(fire("test:unit-drop"), FaultSignal::Continue);
    }

    #[test]
    fn panic_rule_panics_with_a_marker() {
        let _guard = TEST_GUARD.lock().unwrap();
        install(parse_plan("panic@test:unit-panic").unwrap());
        let result = std::panic::catch_unwind(|| fire("test:unit-panic"));
        clear();
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("faultinject: injected panic at test:unit-panic"));
    }
}
