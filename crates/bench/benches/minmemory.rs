//! Micro-benchmarks of the registered MinMemory solvers
//! (supports the running-time comparison of Figure 6).
//!
//! `cargo bench -p bench --bench minmemory`

use bench::microbench::Group;
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::assembly_tree_for;
use treemem::gadgets::harpoon_tower;
use treemem::random::reweight_paper;
use treemem::solver::SolverRegistry;
use treemem::Tree;

fn assembly_trees() -> Vec<(String, Tree)> {
    let mut trees = Vec::new();
    for (kind, size) in [
        (ProblemKind::Grid2d, 400usize),
        (ProblemKind::Grid2d, 900),
        (ProblemKind::Random, 600),
    ] {
        let pattern = kind.generate(size, 11);
        let assembly = assembly_tree_for(&pattern, OrderingMethod::MinimumDegree, 4);
        trees.push((format!("{}-{}", kind.name(), pattern.n()), assembly.tree));
    }
    trees.push(("harpoon-4-3".to_string(), harpoon_tower(4, 4000, 1, 3)));
    trees
}

fn main() {
    let registry = SolverRegistry::with_builtin();
    let trees = assembly_trees();

    let group = Group::new("minmemory");
    for (name, tree) in &trees {
        for solver in registry
            .iter()
            .filter(|s| s.supports(tree) && s.name() != "brute")
        {
            group.bench(&format!("{}/{name}", solver.name()), || {
                solver.solve(tree).peak
            });
        }
    }

    // Random weights (Section VI-E) make the instances harder for the exact
    // algorithms: benchmark that regime separately.
    let group = Group::new("minmemory-random-weights");
    for (name, tree) in trees.iter().take(2) {
        let random = reweight_paper(tree, 99);
        for solver in registry
            .iter()
            .filter(|s| s.supports(&random) && s.name() != "brute")
        {
            group.bench(&format!("{}/{name}", solver.name()), || {
                solver.solve(&random).peak
            });
        }
    }
}
