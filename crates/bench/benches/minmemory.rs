//! Criterion micro-benchmarks of the three MinMemory algorithms
//! (supports the running-time comparison of Figure 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::assembly_tree_for;
use treemem::gadgets::harpoon_tower;
use treemem::liu::liu_exact;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::random::reweight_paper;
use treemem::Tree;

fn assembly_trees() -> Vec<(String, Tree)> {
    let mut trees = Vec::new();
    for (kind, size) in [(ProblemKind::Grid2d, 400usize), (ProblemKind::Grid2d, 900), (ProblemKind::Random, 600)] {
        let pattern = kind.generate(size, 11);
        let assembly = assembly_tree_for(&pattern, OrderingMethod::MinimumDegree, 4);
        trees.push((format!("{}-{}", kind.name(), pattern.n()), assembly.tree));
    }
    trees.push(("harpoon-4-3".to_string(), harpoon_tower(4, 4000, 1, 3)));
    trees
}

fn bench_minmemory(criterion: &mut Criterion) {
    let trees = assembly_trees();
    let mut group = criterion.benchmark_group("minmemory");
    for (name, tree) in &trees {
        group.bench_with_input(BenchmarkId::new("postorder", name), tree, |bencher, tree| {
            bencher.iter(|| best_postorder(tree).peak)
        });
        group.bench_with_input(BenchmarkId::new("liu", name), tree, |bencher, tree| {
            bencher.iter(|| liu_exact(tree).peak)
        });
        group.bench_with_input(BenchmarkId::new("minmem", name), tree, |bencher, tree| {
            bencher.iter(|| min_mem(tree).peak)
        });
    }
    group.finish();
}

fn bench_random_weights(criterion: &mut Criterion) {
    // Random weights (Section VI-E) make the instances harder for the exact
    // algorithms: benchmark that regime separately.
    let base = assembly_trees();
    let mut group = criterion.benchmark_group("minmemory-random-weights");
    for (name, tree) in base.iter().take(2) {
        let random = reweight_paper(tree, 99);
        group.bench_with_input(BenchmarkId::new("postorder", name), &random, |bencher, tree| {
            bencher.iter(|| best_postorder(tree).peak)
        });
        group.bench_with_input(BenchmarkId::new("minmem", name), &random, |bencher, tree| {
            bencher.iter(|| min_mem(tree).peak)
        });
        group.bench_with_input(BenchmarkId::new("liu", name), &random, |bencher, tree| {
            bencher.iter(|| liu_exact(tree).peak)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_minmemory, bench_random_weights
}
criterion_main!(benches);
