//! Micro-benchmarks of the sparse-matrix substrate: orderings, elimination
//! tree, column counts, amalgamation and the numeric multifrontal kernel.
//!
//! `cargo bench -p bench --bench substrate`

use bench::microbench::Group;
use multifrontal::multifrontal_cholesky;
use ordering::{minimum_degree, nested_dissection, rcm};
use sparsemat::gen::{grid2d_5pt, grid2d_matrix};
use symbolic::{amalgamate, column_counts, elimination_tree};

fn main() {
    let pattern = grid2d_5pt(40, 40);
    let group = Group::new("orderings-grid-1600");
    group.bench("minimum-degree", || minimum_degree(&pattern).len());
    group.bench("nested-dissection", || nested_dissection(&pattern).len());
    group.bench("rcm", || rcm(&pattern).len());

    let perm = minimum_degree(&pattern);
    let permuted = perm.apply(&pattern);
    let group = Group::new("symbolic-grid-1600");
    group.bench("elimination-tree", || elimination_tree(&permuted).len());
    let etree = elimination_tree(&permuted);
    group.bench("column-counts", || column_counts(&permuted, &etree).len());
    let counts = column_counts(&permuted, &etree);
    for allowance in [1usize, 4, 16] {
        group.bench(&format!("amalgamation/{allowance}"), || {
            amalgamate(&etree, &counts, allowance).len()
        });
    }

    let matrix = grid2d_matrix(24, 24, 7);
    let group = Group::new("multifrontal-grid-576");
    group.bench("factorize", || {
        multifrontal_cholesky(&matrix, None).unwrap().nnz()
    });
}
