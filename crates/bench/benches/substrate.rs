//! Criterion micro-benchmarks of the sparse-matrix substrate: orderings,
//! elimination tree, column counts, amalgamation and the numeric
//! multifrontal kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use multifrontal::multifrontal_cholesky;
use ordering::{minimum_degree, nested_dissection, rcm};
use sparsemat::gen::{grid2d_5pt, grid2d_matrix};
use symbolic::{amalgamate, column_counts, elimination_tree};

fn bench_orderings(criterion: &mut Criterion) {
    let pattern = grid2d_5pt(40, 40);
    let mut group = criterion.benchmark_group("orderings-grid-1600");
    group.bench_function("minimum-degree", |bencher| bencher.iter(|| minimum_degree(&pattern).len()));
    group.bench_function("nested-dissection", |bencher| bencher.iter(|| nested_dissection(&pattern).len()));
    group.bench_function("rcm", |bencher| bencher.iter(|| rcm(&pattern).len()));
    group.finish();
}

fn bench_symbolic(criterion: &mut Criterion) {
    let pattern = grid2d_5pt(40, 40);
    let perm = minimum_degree(&pattern);
    let permuted = perm.apply(&pattern);
    let mut group = criterion.benchmark_group("symbolic-grid-1600");
    group.bench_function("elimination-tree", |bencher| {
        bencher.iter(|| elimination_tree(&permuted).len())
    });
    let etree = elimination_tree(&permuted);
    group.bench_function("column-counts", |bencher| {
        bencher.iter(|| column_counts(&permuted, &etree).len())
    });
    let counts = column_counts(&permuted, &etree);
    for allowance in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("amalgamation", allowance),
            &allowance,
            |bencher, &allowance| bencher.iter(|| amalgamate(&etree, &counts, allowance).len()),
        );
    }
    group.finish();
}

fn bench_numeric(criterion: &mut Criterion) {
    let matrix = grid2d_matrix(24, 24, 7);
    let mut group = criterion.benchmark_group("multifrontal-grid-576");
    group.sample_size(10);
    group.bench_function("factorize", |bencher| {
        bencher.iter(|| multifrontal_cholesky(&matrix, None).unwrap().nnz())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_orderings, bench_symbolic, bench_numeric
}
criterion_main!(benches);
