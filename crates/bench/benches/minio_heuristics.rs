//! Criterion micro-benchmarks of the MinIO eviction heuristics
//! (supports the Figure 7/8 experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use minio::{schedule_io, ALL_POLICIES};
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::assembly_tree_for;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;

fn bench_policies(criterion: &mut Criterion) {
    let pattern = ProblemKind::Grid2d.generate(900, 5);
    let assembly = assembly_tree_for(&pattern, OrderingMethod::MinimumDegree, 4);
    let tree = assembly.tree;
    let traversal = best_postorder(&tree).traversal;
    let peak = traversal.peak_memory(&tree).unwrap();
    let lower = tree.max_mem_req();
    let memory = lower + (peak - lower) / 2;

    let mut group = criterion.benchmark_group("minio-policies");
    for policy in ALL_POLICIES {
        group.bench_with_input(
            BenchmarkId::new("postorder-traversal", policy.name()),
            &policy,
            |bencher, &policy| bencher.iter(|| schedule_io(&tree, &traversal, memory, policy).unwrap().io_volume),
        );
    }
    group.finish();
}

fn bench_traversal_plus_io(criterion: &mut Criterion) {
    // Full pipeline cost: compute the traversal, then schedule the I/O.
    let pattern = ProblemKind::Grid2d.generate(400, 5);
    let assembly = assembly_tree_for(&pattern, OrderingMethod::MinimumDegree, 2);
    let tree = assembly.tree;
    let mut group = criterion.benchmark_group("minio-end-to-end");
    group.bench_function("minmem+firstfit", |bencher| {
        bencher.iter(|| {
            let optimal = min_mem(&tree);
            let lower = tree.max_mem_req();
            let memory = lower + (optimal.peak - lower) / 2;
            schedule_io(&tree, &optimal.traversal, memory, minio::EvictionPolicy::FirstFit)
                .unwrap()
                .io_volume
        })
    });
    group.bench_function("postorder+firstfit", |bencher| {
        bencher.iter(|| {
            let po = best_postorder(&tree);
            let lower = tree.max_mem_req();
            let memory = lower + (po.peak - lower) / 2;
            schedule_io(&tree, &po.traversal, memory, minio::EvictionPolicy::FirstFit)
                .unwrap()
                .io_volume
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_policies, bench_traversal_plus_io
}
criterion_main!(benches);
