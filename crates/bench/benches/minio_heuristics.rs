//! Micro-benchmarks of the registered MinIO eviction policies
//! (supports the Figure 7/8 experiments).
//!
//! `cargo bench -p bench --bench minio_heuristics`

use bench::microbench::Group;
use minio::{schedule_io_with, PolicyRegistry};
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::assembly_tree_for;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;

fn main() {
    let registry = PolicyRegistry::with_builtin();

    let pattern = ProblemKind::Grid2d.generate(900, 5);
    let assembly = assembly_tree_for(&pattern, OrderingMethod::MinimumDegree, 4);
    let tree = assembly.tree;
    let traversal = best_postorder(&tree).traversal;
    let peak = traversal.peak_memory(&tree).unwrap();
    let lower = tree.max_mem_req();
    let memory = lower + (peak - lower) / 2;

    let group = Group::new("minio-policies");
    for policy in registry.iter() {
        group.bench(&format!("postorder-traversal/{}", policy.name()), || {
            schedule_io_with(&tree, &traversal, memory, policy)
                .unwrap()
                .io_volume
        });
    }

    // Full pipeline cost: compute the traversal, then schedule the I/O.
    let pattern = ProblemKind::Grid2d.generate(400, 5);
    let assembly = assembly_tree_for(&pattern, OrderingMethod::MinimumDegree, 2);
    let tree = assembly.tree;
    let first_fit = registry.get("FirstFit").expect("built-in policy");
    let group = Group::new("minio-end-to-end");
    group.bench("minmem+firstfit", || {
        let optimal = min_mem(&tree);
        let lower = tree.max_mem_req();
        let memory = lower + (optimal.peak - lower) / 2;
        schedule_io_with(&tree, &optimal.traversal, memory, first_fit)
            .unwrap()
            .io_volume
    });
    group.bench("postorder+firstfit", || {
        let po = best_postorder(&tree);
        let lower = tree.max_mem_req();
        let memory = lower + (po.peak - lower) / 2;
        schedule_io_with(&tree, &po.traversal, memory, first_fit)
            .unwrap()
            .io_volume
    });
}
