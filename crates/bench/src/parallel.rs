//! Thin delegating shim: the scoped-thread `par_map` pool moved to
//! [`engine::parallel`] so `Engine::run_batch` can fan configurations over
//! the same worker pool the sweep engine uses.  Existing `bench::parallel`
//! callers keep working through this re-export.

pub use engine::parallel::{default_threads, par_map};
