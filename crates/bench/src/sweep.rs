//! The parallel MinIO sweep engine.
//!
//! The sweep crosses four axes — {tree corpus} × {memory fractions} ×
//! {registered solvers} × {registered eviction policies} — and records, for
//! every cell, the I/O volume, file count and divisible lower bound of the
//! simulated out-of-core execution.  Work is distributed over worker threads
//! at (tree × solver) granularity through [`crate::parallel::par_map`]:
//! every job computes one solver traversal once and then sweeps all memory
//! sizes and policies on it, which keeps the expensive solver call out of
//! the inner loop.
//!
//! The result can be rendered to a machine-readable JSON report
//! ([`SweepReport::to_json`]); the `exp_minio_sweep` binary writes it to
//! `BENCH_minio_sweep.json`.

use std::time::Instant;

use minio::{divisible_lower_bound, schedule_io_with, PolicyRegistry};
use treemem::solver::SolverRegistry;
use treemem::tree::Size;

use crate::corpus::Corpus;
use crate::parallel::{default_threads, par_map};
use crate::runner::memory_sweep;

/// Configuration of a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Memory budgets, as fractions of the way from `max MemReq` (0.0, the
    /// hardest feasible budget) to the solver traversal's peak (1.0, no I/O).
    pub memory_fractions: Vec<f64>,
    /// Worker threads; `None` picks the available parallelism.
    pub threads: Option<usize>,
    /// Solver names to run (subset of the solver registry); empty = every
    /// registered solver that supports the tree.
    pub solvers: Vec<String>,
    /// Policy names to run (subset of the policy registry); empty = every
    /// registered policy.
    pub policies: Vec<String>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            memory_fractions: vec![0.0, 0.25, 0.5, 0.75],
            threads: None,
            solvers: Vec::new(),
            policies: Vec::new(),
        }
    }
}

/// One cell of the sweep: a (tree, solver, memory, policy) combination.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Corpus instance name.
    pub instance: String,
    /// Number of nodes of the tree.
    pub nodes: usize,
    /// Solver that produced the traversal.
    pub solver: String,
    /// Peak memory of that traversal.
    pub solver_peak: Size,
    /// Memory budget of the simulated execution.
    pub memory: Size,
    /// The fraction this budget corresponds to.
    pub fraction: f64,
    /// Eviction policy used.
    pub policy: String,
    /// Volume written to secondary memory.
    pub io_volume: Size,
    /// Number of files written out.
    pub files_written: usize,
    /// Divisible-relaxation lower bound for this traversal and budget.
    pub divisible_bound: Size,
    /// Wall-clock seconds of the simulated out-of-core run for this cell
    /// (the `schedule_io_with` call only, excluding the solver), so future
    /// performance work has a per-cell trajectory to compare against.
    pub cell_seconds: f64,
}

/// The outcome of [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Description of the corpus that was swept.
    pub corpus: String,
    /// Number of trees in the corpus.
    pub trees: usize,
    /// Solver names that ran (registry order).
    pub solvers: Vec<String>,
    /// Policy names that ran (registry order).
    pub policies: Vec<String>,
    /// The memory fractions of the sweep.
    pub memory_fractions: Vec<f64>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds the sweep took.
    pub elapsed_seconds: f64,
    /// Every (tree, solver, memory, policy) cell.
    pub records: Vec<SweepRecord>,
}

/// Escape a string for embedding in a JSON document.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

impl SweepReport {
    /// Render the report as a JSON document (schema `minio_sweep/v2`; v2
    /// added the per-cell `cell_seconds` wall-clock field).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"minio_sweep/v2\",\n");
        out.push_str(&format!(
            "  \"corpus\": \"{}\",\n",
            json_escape(&self.corpus)
        ));
        out.push_str(&format!("  \"trees\": {},\n", self.trees));
        out.push_str(&format!(
            "  \"solvers\": {},\n",
            json_string_array(&self.solvers)
        ));
        out.push_str(&format!(
            "  \"policies\": {},\n",
            json_string_array(&self.policies)
        ));
        let fractions: Vec<String> = self
            .memory_fractions
            .iter()
            .map(|f| format!("{f}"))
            .collect();
        out.push_str(&format!(
            "  \"memory_fractions\": [{}],\n",
            fractions.join(",")
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"elapsed_seconds\": {:.3},\n",
            self.elapsed_seconds
        ));
        out.push_str("  \"records\": [\n");
        for (index, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"instance\": \"{}\", \"nodes\": {}, \"solver\": \"{}\", \
                 \"solver_peak\": {}, \"memory\": {}, \"fraction\": {}, \"policy\": \"{}\", \
                 \"io_volume\": {}, \"files_written\": {}, \"divisible_bound\": {}, \
                 \"cell_seconds\": {:.6}}}{}\n",
                json_escape(&r.instance),
                r.nodes,
                json_escape(&r.solver),
                r.solver_peak,
                r.memory,
                r.fraction,
                json_escape(&r.policy),
                r.io_volume,
                r.files_written,
                r.divisible_bound,
                r.cell_seconds,
                if index + 1 < self.records.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Total I/O volume per policy, summed over every cell (a coarse ranking
    /// used by the report printer).
    pub fn totals_by_policy(&self) -> Vec<(String, Size)> {
        self.policies
            .iter()
            .map(|policy| {
                let total = self
                    .records
                    .iter()
                    .filter(|r| &r.policy == policy)
                    .map(|r| r.io_volume)
                    .sum();
                (policy.clone(), total)
            })
            .collect()
    }
}

/// Run the full sweep of `corpus` with the given registries.
///
/// Every (tree, solver) pair is one parallel job: the job runs the solver
/// once, then sweeps `config.memory_fractions` × policies on the resulting
/// traversal.  Solvers that do not support a tree (e.g. the brute-force
/// oracle beyond its node limit) are skipped for that tree only.
pub fn run_sweep_with(
    corpus: &Corpus,
    solvers: &SolverRegistry,
    policies: &PolicyRegistry,
    config: &SweepConfig,
) -> SweepReport {
    let solver_names: Vec<String> = if config.solvers.is_empty() {
        solvers.names()
    } else {
        config.solvers.clone()
    };
    let policy_names: Vec<String> = if config.policies.is_empty() {
        policies.names()
    } else {
        config.policies.clone()
    };

    // Resolve every requested name once, before any work starts: a typo in
    // the config fails fast here instead of aborting a worker mid-sweep.
    let resolved_solvers: Vec<&dyn treemem::solver::MinMemSolver> = solver_names
        .iter()
        .map(|name| solvers.get_or_err(name).unwrap_or_else(|e| panic!("{e}")))
        .collect();
    let resolved_policies: Vec<&dyn minio::Policy> = policy_names
        .iter()
        .map(|name| policies.get_or_err(name).unwrap_or_else(|e| panic!("{e}")))
        .collect();

    // One job per (tree, solver) pair.
    let jobs: Vec<(usize, usize)> = (0..corpus.trees.len())
        .flat_map(|tree_idx| (0..resolved_solvers.len()).map(move |s| (tree_idx, s)))
        .collect();
    let threads = config
        .threads
        .unwrap_or_else(|| default_threads(jobs.len()));

    let start = Instant::now();
    let per_job: Vec<Vec<SweepRecord>> = par_map(&jobs, threads, |_, &(tree_idx, solver_idx)| {
        let entry = &corpus.trees[tree_idx];
        let solver = resolved_solvers[solver_idx];
        if !solver.supports(&entry.tree) {
            return Vec::new();
        }
        let solved = solver.solve(&entry.tree);
        let mut records = Vec::new();
        for (fraction, memory) in config.memory_fractions.iter().zip(memory_sweep(
            &entry.tree,
            solved.peak,
            &config.memory_fractions,
        )) {
            let bound = divisible_lower_bound(&entry.tree, &solved.traversal, memory)
                .expect("memory is above max MemReq by construction");
            for (policy_idx, policy) in resolved_policies.iter().enumerate() {
                let cell_start = Instant::now();
                let run = schedule_io_with(&entry.tree, &solved.traversal, memory, *policy)
                    .expect("memory is above max MemReq by construction");
                let cell_seconds = cell_start.elapsed().as_secs_f64();
                records.push(SweepRecord {
                    instance: entry.name.clone(),
                    nodes: entry.nodes,
                    solver: solver_names[solver_idx].clone(),
                    solver_peak: solved.peak,
                    memory,
                    fraction: *fraction,
                    policy: policy_names[policy_idx].clone(),
                    io_volume: run.io_volume,
                    files_written: run.files_written,
                    divisible_bound: bound,
                    cell_seconds,
                });
            }
        }
        records
    });
    let elapsed_seconds = start.elapsed().as_secs_f64();

    SweepReport {
        corpus: corpus.description.clone(),
        trees: corpus.len(),
        solvers: solver_names,
        policies: policy_names,
        memory_fractions: config.memory_fractions.clone(),
        threads,
        elapsed_seconds,
        records: per_job.into_iter().flatten().collect(),
    }
}

/// [`run_sweep_with`] on the built-in solver and policy registries.
pub fn run_sweep(corpus: &Corpus, config: &SweepConfig) -> SweepReport {
    run_sweep_with(
        corpus,
        &SolverRegistry::with_builtin(),
        &PolicyRegistry::with_builtin(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusTree};
    use treemem::gadgets::harpoon;
    use treemem::random::random_attachment_tree;

    fn tiny_corpus() -> Corpus {
        let trees = vec![
            CorpusTree {
                name: "harpoon-4".into(),
                nodes: 13,
                tree: harpoon(4, 400, 1),
            },
            CorpusTree {
                name: "random-16".into(),
                nodes: 16,
                tree: random_attachment_tree(16, 50, 5, 7),
            },
        ];
        Corpus {
            description: "tiny test corpus".into(),
            trees,
        }
    }

    #[test]
    fn sweep_crosses_every_axis() {
        let corpus = tiny_corpus();
        let config = SweepConfig {
            memory_fractions: vec![0.0, 0.5],
            ..Default::default()
        };
        let report = run_sweep(&corpus, &config);
        assert!(report.solvers.len() >= 4, "solvers: {:?}", report.solvers);
        assert!(
            report.policies.len() >= 9,
            "policies: {:?}",
            report.policies
        );
        // Both trees are small enough for every solver, so the grid is full.
        let expected = corpus.len()
            * report.solvers.len()
            * config.memory_fractions.len()
            * report.policies.len();
        assert_eq!(report.records.len(), expected);
        // Every record respects the divisible lower bound.
        for r in &report.records {
            assert!(
                r.io_volume >= r.divisible_bound,
                "{} {} {}",
                r.instance,
                r.solver,
                r.policy
            );
        }
    }

    #[test]
    fn unsupported_solvers_are_skipped_per_tree() {
        let trees = vec![CorpusTree {
            name: "big-random".into(),
            nodes: 80,
            tree: random_attachment_tree(80, 50, 5, 3),
        }];
        let corpus = Corpus {
            description: "one big tree".into(),
            trees,
        };
        let report = run_sweep(&corpus, &SweepConfig::default());
        assert!(report.records.iter().all(|r| r.solver != "brute"));
        assert!(report.records.iter().any(|r| r.solver == "minmem"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let corpus = tiny_corpus();
        let config = SweepConfig {
            memory_fractions: vec![0.0],
            ..Default::default()
        };
        let report = run_sweep(&corpus, &config);
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"schema\": \"minio_sweep/v2\""));
        assert!(json.contains("\"policies\": [\"LSNF\""));
        assert_eq!(json.matches("\"instance\":").count(), report.records.len());
        assert_eq!(
            json.matches("\"cell_seconds\":").count(),
            report.records.len()
        );
        assert!(report.records.iter().all(|r| r.cell_seconds >= 0.0));
        // Balanced braces and brackets (a cheap structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn explicit_subsets_restrict_the_grid() {
        let corpus = tiny_corpus();
        let config = SweepConfig {
            memory_fractions: vec![0.0],
            solvers: vec!["postorder".into(), "minmem".into()],
            policies: vec!["LSNF".into(), "S3FIFO".into()],
            ..Default::default()
        };
        let report = run_sweep(&corpus, &config);
        assert_eq!(report.records.len(), corpus.len() * 2 * 2);
    }
}
