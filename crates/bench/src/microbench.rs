//! A tiny micro-benchmark harness for the `harness = false` bench targets.
//!
//! The offline build environment has no `criterion`, so the bench binaries
//! use this minimal stand-in: adaptive iteration counts (targeting a fixed
//! wall-clock budget per measurement), several samples, and a median /
//! spread report on stdout.  It is deliberately simple — no statistics
//! beyond the median and min/max — but stable enough to compare hot-path
//! changes between commits.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples collected per measurement.
const SAMPLES: usize = 7;
/// Wall-clock budget per sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);

/// A named group of measurements, printed as a small table.
pub struct Group {
    name: String,
}

impl Group {
    /// Start a group and print its header.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n## {name}");
        println!(
            "{:<38} {:>12} {:>12} {:>12} {:>8}",
            "benchmark", "median", "min", "max", "iters"
        );
        Group { name }
    }

    /// Measure `f`, discarding its result through [`black_box`].
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        // Warm-up: find an iteration count whose batch takes ~the budget.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET / 4 || iters >= 1 << 24 {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let target = (SAMPLE_BUDGET.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
                iters = target.clamp(1, 1 << 24);
                break;
            }
            iters *= 4;
        }
        // Measurement.
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let median = samples[samples.len() / 2];
        println!(
            "{:<38} {:>12} {:>12} {:>12} {:>8}",
            format!("{}/{label}", self.name),
            format_time(median),
            format_time(samples[0]),
            format_time(samples[samples.len() - 1]),
            iters
        );
    }
}

/// Render a duration in seconds with an adaptive unit.
fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_picks_sensible_units() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 us");
        assert_eq!(format_time(2.5e-8), "25.0 ns");
    }
}
