//! Measurement helpers shared by the experiment binaries.

use std::time::{Duration, Instant};

use treemem::liu::liu_exact;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::tree::Size;
use treemem::{Traversal, Tree};

/// Measure the wall-clock time of a closure and return it with the result.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Run a closure on a thread with a large stack.  The exact algorithms
/// recurse along the height of the tree, which can approach the number of
/// nodes for chain-like assembly trees (RCM / natural orderings), so the
/// experiment binaries always run their body through this helper.
pub fn run_with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .name("experiment".to_string())
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("failed to spawn experiment thread")
        .join()
        .expect("experiment thread panicked")
}

/// Peaks and running times of the three MinMemory algorithms on one tree.
#[derive(Debug, Clone)]
pub struct MinMemoryMeasurement {
    /// Peak memory of the best postorder traversal.
    pub postorder_peak: Size,
    /// Peak memory of Liu's exact algorithm (the optimum).
    pub liu_peak: Size,
    /// Peak memory of the MinMem algorithm (the optimum).
    pub minmem_peak: Size,
    /// Running time of the best-postorder computation.
    pub postorder_time: Duration,
    /// Running time of Liu's exact algorithm.
    pub liu_time: Duration,
    /// Running time of MinMem.
    pub minmem_time: Duration,
    /// The best postorder traversal (used by the MinIO experiments).
    pub postorder_traversal: Traversal,
    /// The traversal produced by Liu's algorithm.
    pub liu_traversal: Traversal,
    /// The traversal produced by MinMem.
    pub minmem_traversal: Traversal,
}

impl MinMemoryMeasurement {
    /// Run the three algorithms on `tree`, checking the exactness invariants
    /// on the fly (the two exact algorithms must agree and never exceed the
    /// postorder).
    pub fn measure(tree: &Tree) -> Self {
        let (po, postorder_time) = time_it(|| best_postorder(tree));
        let (liu, liu_time) = time_it(|| liu_exact(tree));
        let (mm, minmem_time) = time_it(|| min_mem(tree));
        assert_eq!(liu.peak, mm.peak, "the two exact algorithms must agree");
        assert!(mm.peak <= po.peak, "an exact algorithm cannot exceed the postorder");
        MinMemoryMeasurement {
            postorder_peak: po.peak,
            liu_peak: liu.peak,
            minmem_peak: mm.peak,
            postorder_time,
            liu_time,
            minmem_time,
            postorder_traversal: po.traversal,
            liu_traversal: liu.traversal,
            minmem_traversal: mm.traversal,
        }
    }
}

/// The memory sizes at which the MinIO experiments are run for a given
/// traversal: fractions of the way from the largest single-node requirement
/// (below which no execution is possible) to the traversal's peak (above
/// which no I/O is needed).
pub fn memory_sweep(tree: &Tree, traversal_peak: Size, fractions: &[f64]) -> Vec<Size> {
    let lower = tree.max_mem_req();
    let upper = traversal_peak;
    fractions
        .iter()
        .map(|&fraction| {
            let f = fraction.clamp(0.0, 1.0);
            lower + (((upper - lower) as f64) * f).round() as Size
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treemem::gadgets::harpoon;

    #[test]
    fn measurement_reports_consistent_values() {
        let tree = harpoon(4, 400, 1);
        let m = MinMemoryMeasurement::measure(&tree);
        assert_eq!(m.liu_peak, m.minmem_peak);
        assert_eq!(m.minmem_peak, 404);
        assert_eq!(m.postorder_peak, 701);
        assert_eq!(m.postorder_traversal.len(), tree.len());
    }

    #[test]
    fn memory_sweep_spans_the_range() {
        let tree = harpoon(4, 400, 1);
        let sweep = memory_sweep(&tree, 701, &[0.0, 0.5, 1.0]);
        assert_eq!(sweep[0], tree.max_mem_req());
        assert_eq!(sweep[2], 701);
        assert!(sweep[1] > sweep[0] && sweep[1] < sweep[2]);
    }

    #[test]
    fn big_stack_runner_returns_the_value() {
        assert_eq!(run_with_big_stack(|| 6 * 7), 42);
    }
}
