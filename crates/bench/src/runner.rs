//! Measurement helpers shared by the experiment binaries.

use std::time::{Duration, Instant};

use treemem::solver::SolverRegistry;
use treemem::tree::Size;
use treemem::{Traversal, Tree};

/// Measure the wall-clock time of a closure and return it with the result.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Run a closure on a thread with a large stack.  The exact algorithms
/// recurse along the height of the tree, which can approach the number of
/// nodes for chain-like assembly trees (RCM / natural orderings), so the
/// experiment binaries always run their body through this helper.
pub fn run_with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .name("experiment".to_string())
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("failed to spawn experiment thread")
        .join()
        .expect("experiment thread panicked")
}

/// Peak, running time and traversal of one MinMemory solver on one tree.
#[derive(Debug, Clone)]
pub struct SolverMeasurement {
    /// The solver's registry name (`postorder`, `liu`, `minmem`, ...).
    pub solver: &'static str,
    /// Whether the solver is exact.
    pub exact: bool,
    /// Peak memory of the traversal it produced.
    pub peak: Size,
    /// Wall-clock running time of the solver.
    pub time: Duration,
    /// The traversal it produced (used by the MinIO experiments).
    pub traversal: Traversal,
}

/// The measurements of every applicable solver on one tree, produced by
/// enumerating a [`SolverRegistry`] instead of naming algorithms one by one.
#[derive(Debug, Clone)]
pub struct MeasurementSet {
    /// One entry per solver that supports the tree, in registry order.
    pub measurements: Vec<SolverMeasurement>,
}

impl MeasurementSet {
    /// Run every solver of `registry` that supports `tree`, checking the
    /// exactness invariants on the fly (all exact solvers must agree, and no
    /// exact solver may exceed an inexact one).
    pub fn measure_with(tree: &Tree, registry: &SolverRegistry) -> Self {
        let mut measurements = Vec::new();
        for solver in registry.iter().filter(|s| s.supports(tree)) {
            let (result, time) = time_it(|| solver.solve(tree));
            measurements.push(SolverMeasurement {
                solver: solver.name(),
                exact: solver.is_exact(),
                peak: result.peak,
                time,
                traversal: result.traversal,
            });
        }
        let set = MeasurementSet { measurements };
        if let Some(optimal) = set.exact_peak() {
            for m in &set.measurements {
                if m.exact {
                    assert_eq!(m.peak, optimal, "exact solvers must agree ({})", m.solver);
                } else {
                    assert!(
                        m.peak >= optimal,
                        "inexact solver {} reported peak {} below the optimum {optimal}",
                        m.solver,
                        m.peak
                    );
                }
            }
        }
        set
    }

    /// [`MeasurementSet::measure_with`] on [`measurement_registry`].
    pub fn measure(tree: &Tree) -> Self {
        Self::measure_with(tree, &measurement_registry())
    }

    /// The measurement of a given solver, if it ran.
    pub fn get(&self, solver: &str) -> Option<&SolverMeasurement> {
        self.measurements.iter().find(|m| m.solver == solver)
    }

    /// Peak of a given solver.
    ///
    /// # Panics
    /// Panics if the solver did not run on this tree.
    pub fn peak_of(&self, solver: &str) -> Size {
        self.get(solver)
            .unwrap_or_else(|| panic!("no measurement for solver {solver}"))
            .peak
    }

    /// The optimal peak: the value every exact solver agreed on, if any ran.
    pub fn exact_peak(&self) -> Option<Size> {
        self.measurements.iter().find(|m| m.exact).map(|m| m.peak)
    }
}

/// The registry used by [`MeasurementSet::measure`]: every built-in solver
/// except the brute-force oracle (whose cost is exponential).  Also the
/// cheap way to enumerate the measured solver names without solving
/// anything.
pub fn measurement_registry() -> SolverRegistry {
    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(treemem::solver::NaturalPostorderSolver));
    registry.register(Box::new(treemem::solver::BestPostorderSolver));
    registry.register(Box::new(treemem::solver::LiuSolver));
    registry.register(Box::new(treemem::solver::MinMemExploreSolver));
    registry
}

/// The memory sizes at which the MinIO experiments are run for a given
/// traversal: fractions of the way from the largest single-node requirement
/// (below which no execution is possible) to the traversal's peak (above
/// which no I/O is needed).  Delegates to [`engine::MemoryBudget::resolve`],
/// the single definition of the fraction convention.
pub fn memory_sweep(tree: &Tree, traversal_peak: Size, fractions: &[f64]) -> Vec<Size> {
    let lower = tree.max_mem_req();
    fractions
        .iter()
        .map(|&fraction| {
            engine::MemoryBudget::FractionOfPeak(fraction).resolve(lower, traversal_peak)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treemem::gadgets::harpoon;

    #[test]
    fn measurement_reports_consistent_values() {
        let tree = harpoon(4, 400, 1);
        let set = MeasurementSet::measure(&tree);
        assert_eq!(set.peak_of("liu"), set.peak_of("minmem"));
        assert_eq!(set.peak_of("minmem"), 404);
        assert_eq!(set.peak_of("postorder"), 701);
        assert_eq!(set.exact_peak(), Some(404));
        assert_eq!(set.get("postorder").unwrap().traversal.len(), tree.len());
        assert!(
            set.get("brute").is_none(),
            "the oracle is excluded from measure()"
        );
    }

    #[test]
    fn full_registry_includes_the_oracle_on_tiny_trees() {
        let tree = harpoon(3, 30, 1);
        let set = MeasurementSet::measure_with(&tree, &SolverRegistry::with_builtin());
        assert!(set.get("brute").is_some());
        assert_eq!(set.peak_of("brute"), set.peak_of("minmem"));
    }

    #[test]
    fn memory_sweep_spans_the_range() {
        let tree = harpoon(4, 400, 1);
        let sweep = memory_sweep(&tree, 701, &[0.0, 0.5, 1.0]);
        assert_eq!(sweep[0], tree.max_mem_req());
        assert_eq!(sweep[2], 701);
        assert!(sweep[1] > sweep[0] && sweep[1] < sweep[2]);
    }

    #[test]
    fn big_stack_runner_returns_the_value() {
        assert_eq!(run_with_big_stack(|| 6 * 7), 42);
    }
}
