//! `factor_cli` — run one [`engine::EngineConfig`] end to end and print the
//! [`engine::Report`] as JSON.
//!
//! ```text
//! factor_cli --mtx matrix.mtx [--ordering amd] [--amalgamation 4] \
//!            [--solver minmem] [--policy LSNF] \
//!            [--memory N | --memory-fraction F] [--numeric] [--print-config]
//! factor_cli --kind grid2d --nodes 400 [--seed 42] ...
//! ```
//!
//! `--print-config` dumps the resolved configuration JSON (round-trippable
//! through `EngineConfig::from_json`) to stderr before running.

use engine::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: factor_cli (--mtx PATH | --kind NAME --nodes N [--seed S])\n\
         \x20      [--ordering natural|amd|nd|rcm] [--amalgamation N]\n\
         \x20      [--solver NAME] [--policy NAME]\n\
         \x20      [--memory N | --memory-fraction F] [--numeric] [--print-config]\n\
         \n\
         problem kinds: {}\n\
         solvers: {}\n\
         policies: {}",
        ProblemKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", "),
        Engine::new().solvers().names().join(", "),
        Engine::new().policies().names().join(", ")
    );
    std::process::exit(2);
}

fn parse_config(args: &[String]) -> Result<(EngineConfig, bool), String> {
    let mut mtx: Option<String> = None;
    let mut kind: Option<ProblemKind> = None;
    let mut nodes: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut ordering = OrderingMethod::MinimumDegree;
    let mut amalgamation = 1usize;
    let mut solver = "minmem".to_string();
    let mut policy = "LSNF".to_string();
    let mut memory = MemoryBudget::Unlimited;
    let mut numeric = false;
    let mut print_config = false;

    let mut iter = args.iter();
    let value_of = |flag: &str, iter: &mut std::slice::Iter<'_, String>| {
        iter.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--mtx" => mtx = Some(value_of("--mtx", &mut iter)?),
            "--kind" => {
                let name = value_of("--kind", &mut iter)?;
                kind = Some(
                    ProblemKind::from_name(&name)
                        .ok_or_else(|| format!("unknown problem kind '{name}'"))?,
                );
            }
            "--nodes" => {
                nodes = Some(
                    value_of("--nodes", &mut iter)?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?,
                );
            }
            "--seed" => {
                seed = value_of("--seed", &mut iter)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--ordering" => {
                let name = value_of("--ordering", &mut iter)?;
                ordering = OrderingMethod::from_name(&name)
                    .ok_or_else(|| format!("unknown ordering '{name}'"))?;
            }
            "--amalgamation" => {
                amalgamation = value_of("--amalgamation", &mut iter)?
                    .parse()
                    .map_err(|e| format!("--amalgamation: {e}"))?;
            }
            "--solver" => solver = value_of("--solver", &mut iter)?,
            "--policy" => policy = value_of("--policy", &mut iter)?,
            "--memory" => {
                memory = MemoryBudget::Absolute(
                    value_of("--memory", &mut iter)?
                        .parse()
                        .map_err(|e| format!("--memory: {e}"))?,
                );
            }
            "--memory-fraction" => {
                memory = MemoryBudget::FractionOfPeak(
                    value_of("--memory-fraction", &mut iter)?
                        .parse()
                        .map_err(|e| format!("--memory-fraction: {e}"))?,
                );
            }
            "--numeric" => numeric = true,
            "--print-config" => print_config = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let source = match (mtx, kind) {
        (Some(_), Some(_)) => {
            return Err("--mtx and --kind are mutually exclusive".to_string());
        }
        (Some(path), None) => EngineConfig::matrix_market(path),
        (None, Some(kind)) => {
            let nodes = nodes.ok_or("--kind needs --nodes")?;
            EngineConfig::generated(kind, nodes, seed)
        }
        (None, None) => return Err("one of --mtx or --kind is required".to_string()),
    };
    Ok((
        source
            .with_ordering(ordering)
            .with_amalgamation(amalgamation)
            .with_solver(solver)
            .with_policy(policy)
            .with_memory(memory)
            .with_numeric(numeric),
        print_config,
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let (config, print_config) = match parse_config(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("factor_cli: {message}");
            std::process::exit(2);
        }
    };
    if print_config {
        eprint!("{}", config.to_json());
    }
    match Engine::new().run(&config) {
        Ok(report) => print!("{}", report.to_json()),
        Err(err) => {
            eprintln!("factor_cli: {err}");
            std::process::exit(1);
        }
    }
}
