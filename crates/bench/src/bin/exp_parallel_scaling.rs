//! Parallel-execution scaling benchmark: factor the 10⁵-node
//! nested-dissection corpus at 1/2/4/8 workers under a shared memory budget
//! and emit the machine-readable `BENCH_parallel.json`.
//!
//! Every corpus entry is planned once; each worker count then reuses the
//! plan (cached traversal, matrix, symbolic structure) through
//! [`engine::ScheduleSpec::parallel`], so the cells time exactly the
//! numeric execution layer.  Two speedups are recorded per cell:
//!
//! * `speedup_wall` — real wall-clock against the 1-worker run.  Only
//!   meaningful when the host has as many cores as workers.
//! * `speedup_modeled` — the makespan of the *measured* per-task durations
//!   (from the 1-worker run) list-scheduled over `k` workers, plus the
//!   measured sequential merge time.  This is the scheduler's own
//!   admission order replayed with ideal hardware, so it is the
//!   machine-independent ceiling of `speedup_wall`, and the honest metric
//!   on core-starved hosts (the checked-in reference was generated inside a
//!   single-CPU container, where real wall speedup cannot exceed 1×).
//!
//! Flags: `--quick` uses the reduced corpus (the CI smoke configuration);
//! `--check <reference.json>` gates on the parallel layer's contract —
//! measured peak ≤ budget in every cell, speedup at 4 workers ≥
//! [`REQUIRED_SPEEDUP_AT_4`] (the better of wall-clock and modeled, so a
//! noisy shared runner cannot flake the gate while a healthy multi-core
//! host still shows the real wall-clock win), and the deterministic cell
//! identity (cut shape, budget, factor size) bit-equal to the reference,
//! which pins cross-machine determinism.  The JSON is written to the
//! current directory, or `TREEMEM_SWEEP_DIR` if set.

use std::fmt::Write as _;

use engine::prelude::*;
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;

/// The CI gate: 4 workers must beat 1 worker by at least this factor.
const REQUIRED_SPEEDUP_AT_4: f64 = 1.5;
/// Worker counts swept per corpus entry.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Cut granularity of every run (worker-count independent, so the cells'
/// deterministic identity is shared across the sweep).  The sequential
/// merge phase grows with the number of above-cut separators (roughly one
/// per task), so a coarse 16-task cut keeps the merge below ~20% of the
/// work — the Amdahl term — while still feeding 8 workers.
const MAX_TASKS: usize = 16;

struct CorpusEntry {
    name: &'static str,
    kind: ProblemKind,
    nodes: usize,
}

/// The 10⁵-node nested-dissection corpus: problems whose nested-dissection
/// elimination trees are bushy enough that subtree parallelism exists at
/// all.  (A square grid concentrates ~half its flops in the top separators
/// — no subtree cut parallelizes those; see `ProblemKind::Grid2dWide`.)
fn corpus(quick: bool) -> Vec<CorpusEntry> {
    if quick {
        vec![
            CorpusEntry {
                name: "grid2dwide-30000",
                kind: ProblemKind::Grid2dWide,
                nodes: 30_000,
            },
            CorpusEntry {
                name: "banded-50000",
                kind: ProblemKind::Banded,
                nodes: 50_000,
            },
        ]
    } else {
        vec![
            CorpusEntry {
                name: "grid2dwide-100000",
                kind: ProblemKind::Grid2dWide,
                nodes: 100_000,
            },
            CorpusEntry {
                name: "banded-100000",
                kind: ProblemKind::Banded,
                nodes: 100_000,
            },
        ]
    }
}

struct Cell {
    entry: String,
    workers: usize,
    wall_seconds: f64,
    modeled_seconds: f64,
    speedup_wall: f64,
    speedup_modeled: f64,
    measured_peak_entries: u64,
    budget_entries: u64,
    sequential_peak_entries: i64,
    subtree_count: usize,
    above_cut_nodes: usize,
    oversized_tasks: usize,
    forced_admissions: u64,
    merge_seconds: f64,
    critical_path_seconds: f64,
    utilization: f64,
    factor_nnz: usize,
    solve_error: f64,
}

/// List-schedule the measured task durations (already in admission order,
/// largest subtree first) over `workers` ideal workers and append the
/// sequential merge: the modeled wall-clock of the run.
fn modeled_makespan(task_seconds: &[f64], merge_seconds: f64, workers: usize) -> f64 {
    let mut finish = vec![0.0f64; workers.max(1)];
    for &task in task_seconds {
        let earliest = finish
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(index, _)| index)
            .expect("at least one worker");
        finish[earliest] += task;
    }
    finish.iter().copied().fold(0.0f64, f64::max) + merge_seconds
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    std::process::exit(run(quick, check_path));
}

fn run(quick: bool, check_path: Option<String>) -> i32 {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let entries = corpus(quick);
    println!(
        "# parallel scaling benchmark: {} entries, workers {WORKER_COUNTS:?}, \
         max_tasks {MAX_TASKS}, budget = merge peak + largest task, host cores {host_cores}",
        entries.len()
    );

    let engine = Engine::new();
    let mut cells: Vec<Cell> = Vec::new();
    for entry in &entries {
        let config = EngineConfig::generated(entry.kind, entry.nodes, 7)
            .with_ordering(OrderingMethod::NestedDissection)
            .with_numeric(true);
        let plan = match engine.plan(&config) {
            Ok(plan) => plan,
            Err(error) => {
                eprintln!("{}: planning failed: {error}", entry.name);
                return 1;
            }
        };
        println!(
            "\n## {} ({} unknowns, {} tree nodes)",
            entry.name,
            plan.matrix_n(),
            plan.tree().len()
        );

        // Probe run: read the cut's static peaks, then give the sweep the
        // tightest provably sufficient budget — the merge-phase peak (which
        // bounds the retained contribution blocks at any time) plus one
        // largest task.  Under that budget the ledger never has to force an
        // admission, so `measured peak <= budget` is a *checked guarantee*,
        // and the budget-to-sequential-peak ratio in the JSON documents what
        // subtree parallelism costs in memory.
        let probe = match plan
            .schedule_with(
                &engine,
                ScheduleSpec::default()
                    .parallel(ParallelConfig::with_workers(1).with_max_tasks(MAX_TASKS)),
            )
            .and_then(|schedule| schedule.execute(&engine))
        {
            Ok(report) => report,
            Err(error) => {
                eprintln!("{}: probe run failed: {error}", entry.name);
                return 1;
            }
        };
        let probe_parallel = probe.parallel.as_ref().expect("probe ran in parallel mode");
        let budget = probe_parallel.merge_peak_entries + probe_parallel.max_task_peak_entries;
        println!(
            "  budget {budget} entries (merge peak {} + largest task {}), \
             sequential MinMemory peak {}",
            probe_parallel.merge_peak_entries,
            probe_parallel.max_task_peak_entries,
            probe_parallel.sequential_peak_entries
        );

        let mut baseline: Option<(f64, Vec<f64>, f64)> = None; // (wall, tasks, merge)
        for workers in WORKER_COUNTS {
            let parallel = ParallelConfig::with_workers(workers)
                .with_max_tasks(MAX_TASKS)
                .with_budget(BudgetShare::Entries(budget));
            let report = match plan
                .schedule_with(&engine, ScheduleSpec::default().parallel(parallel))
                .and_then(|schedule| schedule.execute(&engine))
            {
                Ok(report) => report,
                Err(error) => {
                    eprintln!("{} at {workers} workers: {error}", entry.name);
                    return 1;
                }
            };
            let numeric = report.numeric.as_ref().expect("numeric stage ran");
            let parallel_report = report.parallel.as_ref().expect("parallel layer ran");
            if workers == 1 {
                baseline = Some((
                    parallel_report.wall_seconds,
                    parallel_report.task_seconds.clone(),
                    parallel_report.merge_seconds,
                ));
            }
            let (base_wall, base_tasks, base_merge) =
                baseline.as_ref().expect("1-worker cell runs first");
            let modeled = modeled_makespan(base_tasks, *base_merge, workers);
            let modeled_serial = modeled_makespan(base_tasks, *base_merge, 1);
            let cell = Cell {
                entry: entry.name.to_string(),
                workers,
                wall_seconds: parallel_report.wall_seconds,
                modeled_seconds: modeled,
                speedup_wall: base_wall / parallel_report.wall_seconds,
                speedup_modeled: modeled_serial / modeled,
                measured_peak_entries: parallel_report.measured_peak_entries,
                budget_entries: parallel_report.budget_entries.expect("budget configured"),
                sequential_peak_entries: parallel_report.sequential_peak_entries,
                subtree_count: parallel_report.subtree_count,
                above_cut_nodes: parallel_report.above_cut_nodes,
                oversized_tasks: parallel_report.oversized_tasks,
                forced_admissions: parallel_report.forced_admissions,
                merge_seconds: parallel_report.merge_seconds,
                critical_path_seconds: parallel_report.critical_path_seconds,
                utilization: parallel_report.utilization,
                factor_nnz: numeric.factor_nnz,
                solve_error: numeric.solve_error,
            };
            println!(
                "  workers {:>2}: wall {:>8.3}s  modeled {:>8.3}s  speedup (wall {:>5.2}x / \
                 modeled {:>5.2}x)  peak {:>12} / budget {:>12}  merge {:>6.3}s  util {:>5.2}",
                cell.workers,
                cell.wall_seconds,
                cell.modeled_seconds,
                cell.speedup_wall,
                cell.speedup_modeled,
                cell.measured_peak_entries,
                cell.budget_entries,
                cell.merge_seconds,
                cell.utilization,
            );
            cells.push(cell);
        }
    }

    let json = render_json(quick, host_cores, &cells);
    let directory = std::env::var_os("TREEMEM_SWEEP_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = directory.join("BENCH_parallel.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nWrote {}", path.display()),
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            return 1;
        }
    }

    match check_path {
        None => 0,
        Some(reference) => check(&reference, host_cores, &cells),
    }
}

fn render_json(quick: bool, host_cores: usize, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"parallel_scaling/v1\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"max_tasks\": {MAX_TASKS},");
    out.push_str("  \"budget_rule\": \"merge_peak_entries + max_task_peak_entries\",\n");
    let _ = writeln!(out, "  \"required_speedup_at_4\": {REQUIRED_SPEEDUP_AT_4},");
    out.push_str("  \"cells\": [\n");
    for (index, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"entry\": \"{}\", \"workers\": {}, \"wall_seconds\": {:.6}, \
             \"modeled_seconds\": {:.6}, \"speedup_wall\": {:.3}, \"speedup_modeled\": {:.3}, \
             \"measured_peak_entries\": {}, \"budget_entries\": {}, \
             \"sequential_peak_entries\": {}, \"subtree_count\": {}, \"above_cut_nodes\": {}, \
             \"oversized_tasks\": {}, \"forced_admissions\": {}, \"merge_seconds\": {:.6}, \
             \"critical_path_seconds\": {:.6}, \"utilization\": {:.3}, \"factor_nnz\": {}, \
             \"solve_error\": {:e}}}{}",
            cell.entry,
            cell.workers,
            cell.wall_seconds,
            cell.modeled_seconds,
            cell.speedup_wall,
            cell.speedup_modeled,
            cell.measured_peak_entries,
            cell.budget_entries,
            cell.sequential_peak_entries,
            cell.subtree_count,
            cell.above_cut_nodes,
            cell.oversized_tasks,
            cell.forced_admissions,
            cell.merge_seconds,
            cell.critical_path_seconds,
            cell.utilization,
            cell.factor_nnz,
            cell.solve_error,
            if index + 1 < cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// One reference cell: the deterministic identity fields.
struct ReferenceCell {
    entry: String,
    workers: usize,
    budget_entries: u64,
    sequential_peak_entries: i64,
    subtree_count: usize,
    above_cut_nodes: usize,
    oversized_tasks: usize,
    factor_nnz: usize,
}

fn parse_reference(contents: &str) -> Vec<ReferenceCell> {
    let mut cells = Vec::new();
    for line in contents.lines() {
        let Some(entry) = extract_str(line, "\"entry\": \"") else {
            continue;
        };
        let field = |key: &str| extract_u64(line, key);
        let (
            Some(workers),
            Some(budget),
            Some(seq),
            Some(subtrees),
            Some(above),
            Some(oversized),
            Some(nnz),
        ) = (
            field("\"workers\": "),
            field("\"budget_entries\": "),
            field("\"sequential_peak_entries\": "),
            field("\"subtree_count\": "),
            field("\"above_cut_nodes\": "),
            field("\"oversized_tasks\": "),
            field("\"factor_nnz\": "),
        )
        else {
            continue;
        };
        cells.push(ReferenceCell {
            entry,
            workers: workers as usize,
            budget_entries: budget,
            sequential_peak_entries: seq as i64,
            subtree_count: subtrees as usize,
            above_cut_nodes: above as usize,
            oversized_tasks: oversized as usize,
            factor_nnz: nnz as usize,
        });
    }
    cells
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The `--check` gate; see the module docs.
fn check(path: &str, host_cores: usize, cells: &[Cell]) -> i32 {
    let contents = match std::fs::read_to_string(path) {
        Ok(contents) => contents,
        Err(err) => {
            eprintln!("could not read reference {path}: {err}");
            return 1;
        }
    };
    let reference = parse_reference(&contents);
    if reference.is_empty() {
        eprintln!("reference file {path} contains no cells");
        return 1;
    }
    let mut failures = 0usize;

    // Gate 1: measured parallel peak within the shared budget, every cell.
    for cell in cells {
        if cell.measured_peak_entries > cell.budget_entries {
            eprintln!(
                "FAIL {} at {} workers: measured peak {} exceeds budget {}",
                cell.entry, cell.workers, cell.measured_peak_entries, cell.budget_entries
            );
            failures += 1;
        }
        if cell.solve_error > 1e-6 {
            eprintln!(
                "FAIL {} at {} workers: solve residual {}",
                cell.entry, cell.workers, cell.solve_error
            );
            failures += 1;
        }
    }

    // Gate 2: speedup at 4 workers.  The modeled makespan (measured task
    // durations, list-scheduled) is the load-insensitive metric; the wall
    // clock additionally counts on sub-second cells measured once on
    // possibly noisy shared runners.  Gate on the better of the two so a
    // throttled CI neighbor cannot fail an unrelated push, while a healthy
    // multi-core host still demonstrates the real wall-clock win.
    for cell in cells.iter().filter(|c| c.workers == 4) {
        let (speedup, metric) = if cell.speedup_wall >= cell.speedup_modeled && host_cores >= 4 {
            (cell.speedup_wall, "wall")
        } else {
            (cell.speedup_modeled, "modeled")
        };
        if speedup < REQUIRED_SPEEDUP_AT_4 {
            eprintln!(
                "FAIL {}: {metric} speedup at 4 workers is {speedup:.2}x < \
                 {REQUIRED_SPEEDUP_AT_4}x",
                cell.entry
            );
            failures += 1;
        } else {
            println!(
                "ok   {}: {metric} speedup at 4 workers {speedup:.2}x (>= \
                 {REQUIRED_SPEEDUP_AT_4}x)",
                cell.entry
            );
        }
    }

    // Gate 3: deterministic cell identity matches the reference bit for bit
    // (the reference may have been generated on a different machine).
    let mut compared = 0usize;
    for expected in &reference {
        let Some(cell) = cells
            .iter()
            .find(|c| c.entry == expected.entry && c.workers == expected.workers)
        else {
            eprintln!(
                "FAIL reference cell {} at {} workers was not produced",
                expected.entry, expected.workers
            );
            failures += 1;
            continue;
        };
        compared += 1;
        let mismatches = [
            (
                "budget_entries",
                cell.budget_entries,
                expected.budget_entries,
            ),
            (
                "sequential_peak_entries",
                cell.sequential_peak_entries as u64,
                expected.sequential_peak_entries as u64,
            ),
            (
                "subtree_count",
                cell.subtree_count as u64,
                expected.subtree_count as u64,
            ),
            (
                "above_cut_nodes",
                cell.above_cut_nodes as u64,
                expected.above_cut_nodes as u64,
            ),
            (
                "oversized_tasks",
                cell.oversized_tasks as u64,
                expected.oversized_tasks as u64,
            ),
            (
                "factor_nnz",
                cell.factor_nnz as u64,
                expected.factor_nnz as u64,
            ),
        ];
        for (field, actual, wanted) in mismatches {
            if actual != wanted {
                eprintln!(
                    "FAIL {} at {} workers: {field} = {actual}, reference says {wanted}",
                    expected.entry, expected.workers
                );
                failures += 1;
            }
        }
    }
    if compared == 0 {
        eprintln!("no reference cell was comparable; refusing to pass an empty gate");
        return 1;
    }
    println!(
        "checked {compared} reference cells, {} measured cells, {failures} failure(s)",
        cells.len()
    );
    if failures > 0 {
        1
    } else {
        0
    }
}
