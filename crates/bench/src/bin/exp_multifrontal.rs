//! Experiment E9 — end-to-end multifrontal demonstration (Section II-A).
//!
//! Factorize a set of generated SPD matrices with the multifrontal method,
//! once with the classical elimination-tree postorder and once with the
//! traversal computed by MinMem on the per-column tree model, and measure the
//! real peak of temporary storage (frontal matrices + contribution blocks) in
//! both cases.  The measurement is checked against the model prediction,
//! closing the loop between the abstract tree problem and the factorization
//! it models.

use bench::{run_with_big_stack, write_report, ReportFile};
use multifrontal::memory::per_column_model;
use multifrontal::numeric::SymbolicStructure;
use multifrontal::{instrumented_factorization, solve};
use sparsemat::gen::{grid2d_matrix, random_spd_pattern, spd_matrix_from_pattern};
use symbolic::etree::etree_postorder;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;

fn main() {
    run_with_big_stack(run);
}

fn run() {
    println!("# Experiment E9: traversal-driven multifrontal Cholesky\n");
    println!(
        "{:<18} {:>7} {:>12} {:>14} {:>14} {:>14} {:>8}",
        "matrix", "n", "factor nnz", "etree postord", "best postorder", "MinMem optimal", "saving"
    );
    let mut rows = String::from(
        "matrix,n,factor_nnz,etree_postorder_peak,best_postorder_peak,optimal_peak,model_matches\n",
    );

    let matrices = vec![
        ("grid2d-20x20".to_string(), grid2d_matrix(20, 20, 1)),
        ("grid2d-16x25".to_string(), grid2d_matrix(16, 25, 2)),
        (
            "random-400".to_string(),
            spd_matrix_from_pattern(&random_spd_pattern(400, 4.0, 3), 3),
        ),
    ];

    for (name, matrix) in matrices {
        let structure = SymbolicStructure::from_pattern(&matrix.pattern());
        let model = per_column_model(&structure);

        // 1. Classical multifrontal order: postorder of the elimination tree.
        let etree_order = etree_postorder(&structure.etree);
        let etree_run = instrumented_factorization(&matrix, Some(&etree_order)).unwrap();

        // 2. Liu's best postorder of the model tree.
        let best_po: Vec<usize> = best_postorder(&model).traversal.reversed().into_order();
        let best_po_run = instrumented_factorization(&matrix, Some(&best_po)).unwrap();

        // 3. Optimal traversal (MinMem).
        let optimal: Vec<usize> = min_mem(&model).traversal.reversed().into_order();
        let optimal_run = instrumented_factorization(&matrix, Some(&optimal)).unwrap();

        // The instrumentation must agree with the model in every case.
        let model_matches = [&etree_run, &best_po_run, &optimal_run]
            .iter()
            .all(|run| run.measured_peak_entries as i64 == run.model_peak_entries);
        assert!(
            model_matches,
            "{name}: the model must predict the measured peak exactly"
        );

        // The factorization is correct: solve a system and check the residual.
        let n = matrix.n();
        let expected: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        let rhs = matrix.multiply(&expected);
        let solution = solve(&optimal_run.factor, &rhs);
        let error = solution
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(error < 1e-6, "{name}: solve error {error}");

        let saving = 100.0
            * (1.0
                - optimal_run.measured_peak_entries as f64
                    / etree_run.measured_peak_entries as f64);
        println!(
            "{:<18} {:>7} {:>12} {:>14} {:>14} {:>14} {:>7.1}%",
            name,
            n,
            etree_run.factor_nnz,
            etree_run.measured_peak_entries,
            best_po_run.measured_peak_entries,
            optimal_run.measured_peak_entries,
            saving
        );
        rows.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            name,
            n,
            etree_run.factor_nnz,
            etree_run.measured_peak_entries,
            best_po_run.measured_peak_entries,
            optimal_run.measured_peak_entries,
            model_matches
        ));
    }

    println!("\nPeaks are counted in matrix entries of temporary storage (fronts + contribution blocks).");
    println!(
        "The model prediction matched the instrumented execution for every matrix and traversal."
    );

    let files = vec![ReportFile::new("multifrontal_peaks.csv", rows)];
    match write_report("exp_multifrontal", &files) {
        Ok(paths) => println!(
            "Wrote {} report file(s) under results/exp_multifrontal/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
