//! Experiment E9 — end-to-end multifrontal demonstration (Section II-A).
//!
//! Factorize a set of generated SPD matrices with the multifrontal method
//! through the `engine` facade: one plan per matrix (numeric stage enabled),
//! one schedule per traversal family — the stored-order postorder of the
//! elimination tree (`natural`), Liu's best postorder (`postorder`) and the
//! optimal traversal (`minmem`) — measuring the real peak of temporary
//! storage (frontal matrices + contribution blocks) in every case.  The
//! measurement is checked against the model prediction, closing the loop
//! between the abstract tree problem and the factorization it models.

use bench::{run_with_big_stack, write_report, ReportFile};
use engine::prelude::*;

const SOLVERS: [&str; 3] = ["natural", "postorder", "minmem"];

fn main() {
    run_with_big_stack(run);
}

fn run() {
    println!("# Experiment E9: traversal-driven multifrontal Cholesky (engine facade)\n");
    println!(
        "{:<18} {:>7} {:>12} {:>14} {:>14} {:>14} {:>8}",
        "matrix", "n", "factor nnz", "etree postord", "best postorder", "MinMem optimal", "saving"
    );
    let mut rows = String::from(
        "matrix,n,factor_nnz,etree_postorder_peak,best_postorder_peak,optimal_peak,model_matches\n",
    );

    let engine = Engine::new();
    let matrices = [
        ("grid2d-400", ProblemKind::Grid2d, 1u64),
        ("grid2d9-400", ProblemKind::Grid2d9, 2),
        ("random-400", ProblemKind::Random, 3),
    ];

    for (name, kind, seed) in matrices {
        // The original experiment factorizes the matrices unpermuted, so the
        // natural ordering keeps the pattern as generated.
        let config = EngineConfig::generated(kind, 400, seed)
            .with_ordering(OrderingMethod::Natural)
            .with_numeric(true);
        let plan = engine.plan(&config).expect("valid configuration");

        let mut peaks = Vec::with_capacity(SOLVERS.len());
        let mut factor_nnz = 0;
        let mut model_matches = true;
        for solver in SOLVERS {
            let report = plan
                .schedule_with(&engine, ScheduleSpec::default().solver(solver))
                .expect("registered solver")
                .execute(&engine)
                .expect("SPD matrices factorize");
            let numeric = report.numeric.expect("numeric stage enabled");
            model_matches &= numeric.measured_peak_entries as i64 == numeric.model_peak_entries;
            // The factorization is correct: the engine solves a system with a
            // known answer and reports the residual.
            assert!(
                numeric.solve_error < 1e-6,
                "{name}/{solver}: solve error {}",
                numeric.solve_error
            );
            factor_nnz = numeric.factor_nnz;
            peaks.push(numeric.measured_peak_entries);
        }
        assert!(
            model_matches,
            "{name}: the model must predict the measured peak exactly"
        );

        let n = plan.matrix_n();
        let saving = 100.0 * (1.0 - peaks[2] as f64 / peaks[0] as f64);
        println!(
            "{:<18} {:>7} {:>12} {:>14} {:>14} {:>14} {:>7.1}%",
            name, n, factor_nnz, peaks[0], peaks[1], peaks[2], saving
        );
        rows.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            name, n, factor_nnz, peaks[0], peaks[1], peaks[2], model_matches
        ));
    }

    println!("\nPeaks are counted in matrix entries of temporary storage (fronts + contribution blocks).");
    println!(
        "The model prediction matched the instrumented execution for every matrix and traversal."
    );

    let files = vec![ReportFile::new("multifrontal_peaks.csv", rows)];
    match write_report("exp_multifrontal", &files) {
        Ok(paths) => println!(
            "Wrote {} report file(s) under results/exp_multifrontal/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
