//! Full MinIO sweep: {corpus × memory budgets × every registered solver ×
//! every registered eviction policy}, in parallel, emitting the
//! machine-readable `BENCH_minio_sweep.json` report.
//!
//! This generalises Figures 7 and 8 of the paper into one grid: Figure 7 is
//! the policy axis at a fixed solver, Figure 8 the solver axis at a fixed
//! policy.  The cache-inspired policies (`LruDist`, `GDSF`, `S3FIFO`) ride
//! the same sweep, so their workload-dependence is directly comparable with
//! the paper's six heuristics.
//!
//! Run with `--quick` for the reduced corpus; the JSON is written to
//! `BENCH_minio_sweep.json` in the current directory (override the directory
//! with `TREEMEM_SWEEP_DIR`).

use bench::{
    default_corpus, quick_corpus, random_corpus, run_sweep, run_with_big_stack, ExperimentArgs,
    SweepConfig,
};

fn main() {
    let args = ExperimentArgs::from_env();
    run_with_big_stack(move || run(args));
}

fn run(args: ExperimentArgs) {
    // Assembly corpus plus its random re-weighting, as in Experiments E3/E4:
    // many synthetic assembly trees never need I/O within the sweep, and the
    // re-weighted variants restore the out-of-core regime.
    let assembly = if args.quick {
        quick_corpus()
    } else {
        default_corpus()
    };
    let mut corpus = random_corpus(&assembly, 1, args.seed);
    corpus.trees.extend(assembly.trees);

    let config = SweepConfig::default();
    println!(
        "# MinIO sweep: {} trees x {} memory budgets x all solvers x all policies",
        corpus.len(),
        config.memory_fractions.len()
    );
    let report = run_sweep(&corpus, &config);
    println!(
        "swept {} cells ({} solvers x {} policies) on {} threads in {:.2}s",
        report.records.len(),
        report.solvers.len(),
        report.policies.len(),
        report.threads,
        report.elapsed_seconds
    );

    println!("\nTotal I/O volume per policy (all solvers and budgets):");
    let mut totals = report.totals_by_policy();
    totals.sort_by_key(|(_, total)| *total);
    for (policy, total) in &totals {
        println!("  {policy:10} {total:>14}");
    }

    let directory = std::env::var_os("TREEMEM_SWEEP_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = directory.join("BENCH_minio_sweep.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("\nWrote {}", path.display()),
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}
