//! `loadgen` — replay seeded configuration mixes against a spawned server
//! and emit `BENCH_server.json`.
//!
//! The binary boots `server::Server` in-process on an ephemeral port, then
//! drives it over real loopback TCP through `server::client`:
//!
//! * `cache_speedup` — the headline measurement: cold `/report` requests
//!   (distinct seeds, every one a plan-cache miss) versus hot repeats of one
//!   configuration on the 10⁵-node nested-dissection corpus, asserting the
//!   cached p50 is ≥5× lower and that a cache-hit report is identical to the
//!   cold-path report up to wall-clock timings;
//! * `hot_set_skew` — a small hot set with skewed popularity;
//! * `parallel_hot` — the same hot set hammered from several client threads;
//! * `mixed_kinds` — every problem kind across `/plan`, `/schedule` and
//!   `/report`;
//! * `cold_scan` — unique seeds overflowing the plan cache (evictions);
//! * `solve_throughput` — one cold numeric `/report` computes and caches a
//!   factor, then `POST /solve` is hammered against it: every solve must be
//!   a factor-cache hit with a green residual, and the hot solve p50 must
//!   sit far below the cold factorization;
//! * `malformed` — one request per fixed parser bug (depth bomb, broken
//!   surrogate escape, raw control character) plus framing garbage,
//!   asserting every one is answered with a 4xx and the server keeps
//!   serving.
//!
//! Flags: `--quick` shrinks the corpus for the CI smoke job (and relaxes the
//! ≥5× assertion, which needs the big corpus to be meaningful); `--out PATH`
//! overrides the output path (default `BENCH_server.json` in the current
//! directory, or `TREEMEM_SWEEP_DIR` if set).  Any violated invariant makes
//! the process exit non-zero, so CI can gate on it directly.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

use engine::json::Json;
use engine::prelude::*;
use perfprof::timing::{latency_summary, LatencySummary};
use prng::{Rng, StdRng};
use server::client::{self, ClientResponse};
use server::{Server, ServerConfig, ServerHandle};
use sparsemat::gen::ProblemKind;

/// Cache capacity the server is spawned with; `cold_scan` issues more
/// distinct configurations than this to force evictions.
const CACHE_CAPACITY: usize = 16;
/// The headline requirement: cached-plan p50 at least this many times lower.
const REQUIRED_SPEEDUP: f64 = 5.0;

struct Sizes {
    mode: &'static str,
    headline_nodes: usize,
    headline_cold: usize,
    headline_hot: usize,
    hot_set_nodes: usize,
    hot_set_requests: usize,
    mixed_nodes: usize,
    cold_scan_nodes: usize,
    cold_scan_requests: usize,
    solve_nodes: usize,
    solve_requests: usize,
    enforce_speedup: bool,
}

const FULL: Sizes = Sizes {
    mode: "full",
    headline_nodes: 100_000,
    headline_cold: 3,
    headline_hot: 12,
    hot_set_nodes: 5_000,
    hot_set_requests: 60,
    mixed_nodes: 1_500,
    cold_scan_nodes: 2_000,
    cold_scan_requests: 24,
    solve_nodes: 50_000,
    solve_requests: 40,
    enforce_speedup: true,
};

const QUICK: Sizes = Sizes {
    mode: "quick",
    headline_nodes: 10_000,
    headline_cold: 2,
    headline_hot: 6,
    hot_set_nodes: 1_000,
    hot_set_requests: 24,
    mixed_nodes: 600,
    cold_scan_nodes: 500,
    cold_scan_requests: 20,
    solve_nodes: 2_000,
    solve_requests: 12,
    enforce_speedup: false,
};

/// Outcome of one scenario, serialised into the report.
struct ScenarioResult {
    name: &'static str,
    requests: usize,
    wall_seconds: f64,
    latency: LatencySummary,
    hit_latency: LatencySummary,
    miss_latency: LatencySummary,
    cache_hits: usize,
    expected_4xx: usize,
}

fn scenario_json(result: &ScenarioResult) -> String {
    format!(
        "    {{\"name\": \"{}\", \"requests\": {}, \"wall_seconds\": {:.6}, \
         \"throughput_rps\": {:.3}, \"cache_hits\": {}, \"expected_4xx\": {},\n     \
         \"latency\": {},\n     \"hit_latency\": {},\n     \"miss_latency\": {}}}",
        result.name,
        result.requests,
        result.wall_seconds,
        result.requests as f64 / result.wall_seconds.max(1e-9),
        result.cache_hits,
        result.expected_4xx,
        result.latency.to_json(),
        result.hit_latency.to_json(),
        result.miss_latency.to_json(),
    )
}

/// A failed invariant: recorded, reported, and turned into a non-zero exit.
struct Violations(Vec<String>);

impl Violations {
    fn check(&mut self, ok: bool, what: impl Into<String>) {
        if !ok {
            let what = what.into();
            eprintln!("loadgen: VIOLATION: {what}");
            self.0.push(what);
        }
    }
}

fn grid_config(nodes: usize, seed: u64) -> String {
    EngineConfig::generated(ProblemKind::Grid2d, nodes, seed)
        .with_ordering(OrderingMethod::NestedDissection)
        .with_memory(MemoryBudget::FractionOfPeak(0.5))
        .to_json()
}

/// POST expecting a 200; records latency and cache disposition.
fn timed_post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    violations: &mut Violations,
) -> (f64, ClientResponse) {
    let started = Instant::now();
    let response = client::post(addr, path, body).unwrap_or_else(|e| {
        eprintln!("loadgen: transport failure: {e}");
        std::process::exit(1);
    });
    let seconds = started.elapsed().as_secs_f64();
    violations.check(
        response.status == 200,
        format!(
            "{path} answered {} ({})",
            response.status,
            response.body.trim()
        ),
    );
    (seconds, response)
}

fn run_mix(
    name: &'static str,
    addr: SocketAddr,
    requests: &[(&str, String)],
    violations: &mut Violations,
) -> ScenarioResult {
    let started = Instant::now();
    let mut samples = Vec::new();
    let mut hit_samples = Vec::new();
    let mut miss_samples = Vec::new();
    for (path, body) in requests {
        let (seconds, response) = timed_post(addr, path, body, violations);
        samples.push(seconds);
        if response.cache_hit() {
            hit_samples.push(seconds);
        } else {
            miss_samples.push(seconds);
        }
    }
    ScenarioResult {
        name,
        requests: requests.len(),
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&samples),
        hit_latency: latency_summary(&hit_samples),
        miss_latency: latency_summary(&miss_samples),
        cache_hits: hit_samples.len(),
        expected_4xx: 0,
    }
}

/// The headline cold-vs-cached measurement plus the bit-identity check.
fn cache_speedup(
    addr: SocketAddr,
    sizes: &Sizes,
    violations: &mut Violations,
) -> (ScenarioResult, String) {
    let started = Instant::now();
    let mut cold = Vec::new();
    let mut hot = Vec::new();
    let mut cold_body = String::new();
    let mut hot_body = String::new();
    for seed in 0..sizes.headline_cold as u64 {
        let config = grid_config(sizes.headline_nodes, seed);
        let (seconds, response) = timed_post(addr, "/report", &config, violations);
        violations.check(
            !response.cache_hit(),
            format!("headline seed {seed} unexpectedly hit the cache"),
        );
        cold.push(seconds);
        if seed == 0 {
            cold_body = response.body;
        }
    }
    let hot_config = grid_config(sizes.headline_nodes, 0);
    for repeat in 0..sizes.headline_hot {
        let (seconds, response) = timed_post(addr, "/report", &hot_config, violations);
        violations.check(
            response.cache_hit(),
            format!("headline repeat {repeat} missed the cache"),
        );
        hot.push(seconds);
        if repeat == 0 {
            hot_body = response.body;
        }
    }

    // A cache-hit report is the cold-path report, minus wall-clock noise.
    let fingerprint_match = client::report_identity(&cold_body).is_some()
        && client::report_identity(&cold_body) == client::report_identity(&hot_body);
    violations.check(
        fingerprint_match,
        "cache-hit report differs from the cold-path report",
    );

    let cold_summary = latency_summary(&cold);
    let hot_summary = latency_summary(&hot);
    let speedup = cold_summary.p50_seconds / hot_summary.p50_seconds.max(1e-9);
    if sizes.enforce_speedup {
        violations.check(
            speedup >= REQUIRED_SPEEDUP,
            format!("cached-plan speedup {speedup:.1}x below the required {REQUIRED_SPEEDUP}x"),
        );
    }
    println!(
        "loadgen: headline {} nodes: cold p50 {:.4}s, cached p50 {:.4}s, speedup {:.1}x",
        sizes.headline_nodes, cold_summary.p50_seconds, hot_summary.p50_seconds, speedup
    );

    let headline = format!(
        "  \"headline\": {{\"corpus_nodes\": {}, \"cold_requests\": {}, \"hot_requests\": {}, \
         \"cold_p50_seconds\": {:.6}, \"hot_p50_seconds\": {:.6}, \"speedup\": {:.3}, \
         \"required_speedup\": {:.1}, \"speedup_enforced\": {}, \"fingerprint_match\": {}}},\n",
        sizes.headline_nodes,
        cold.len(),
        hot.len(),
        cold_summary.p50_seconds,
        hot_summary.p50_seconds,
        speedup,
        REQUIRED_SPEEDUP,
        sizes.enforce_speedup,
        fingerprint_match,
    );
    let scenario = ScenarioResult {
        name: "cache_speedup",
        requests: cold.len() + hot.len(),
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&[cold.clone(), hot.clone()].concat()),
        hit_latency: hot_summary,
        miss_latency: cold_summary,
        cache_hits: hot.len(),
        expected_4xx: 0,
    };
    (scenario, headline)
}

fn hot_set_skew(addr: SocketAddr, sizes: &Sizes, violations: &mut Violations) -> ScenarioResult {
    let mut rng = StdRng::seed_from_u64(0x10ad_6e11);
    let hot_set: Vec<String> = (0..6)
        .map(|seed| grid_config(sizes.hot_set_nodes, 100 + seed))
        .collect();
    let requests: Vec<(&str, String)> = (0..sizes.hot_set_requests)
        .map(|_| {
            // Skew: the minimum of two uniform draws favours low indices
            // (index 0 ~ 30%, index 5 ~ 3%).
            let pick = rng
                .gen_range(0..hot_set.len())
                .min(rng.gen_range(0..hot_set.len()));
            ("/report", hot_set[pick].clone())
        })
        .collect();
    run_mix("hot_set_skew", addr, &requests, violations)
}

fn parallel_hot(addr: SocketAddr, sizes: &Sizes, violations: &mut Violations) -> ScenarioResult {
    let hot_set: Vec<String> = (0..4)
        .map(|seed| grid_config(sizes.hot_set_nodes, 200 + seed))
        .collect();
    // Warm the cache so the parallel phase measures hit throughput.
    for config in &hot_set {
        timed_post(addr, "/report", config, violations);
    }
    let threads = 4;
    let per_thread = (sizes.hot_set_requests / threads).max(3);
    let started = Instant::now();
    let mut all_samples: Vec<f64> = Vec::new();
    let mut hits = 0usize;
    std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..threads)
            .map(|thread| {
                let hot_set = &hot_set;
                scope.spawn(move || {
                    let mut samples = Vec::new();
                    let mut hits = 0usize;
                    let mut failures = 0usize;
                    for i in 0..per_thread {
                        let config = &hot_set[(thread + i) % hot_set.len()];
                        let started = Instant::now();
                        match client::post(addr, "/report", config) {
                            Ok(response) if response.status == 200 => {
                                samples.push(started.elapsed().as_secs_f64());
                                if response.cache_hit() {
                                    hits += 1;
                                }
                            }
                            _ => failures += 1,
                        }
                    }
                    (samples, hits, failures)
                })
            })
            .collect();
        for task in tasks {
            let (samples, thread_hits, failures) = task.join().expect("client thread");
            violations.check(
                failures == 0,
                format!("{failures} parallel requests failed"),
            );
            all_samples.extend(samples);
            hits += thread_hits;
        }
    });
    let summary = latency_summary(&all_samples);
    ScenarioResult {
        name: "parallel_hot",
        requests: threads * per_thread,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: summary,
        hit_latency: summary,
        miss_latency: LatencySummary::default(),
        cache_hits: hits,
        expected_4xx: 0,
    }
}

fn mixed_kinds(addr: SocketAddr, sizes: &Sizes, violations: &mut Violations) -> ScenarioResult {
    let mut requests: Vec<(&str, String)> = Vec::new();
    for (index, kind) in ProblemKind::ALL.iter().enumerate() {
        let config = EngineConfig::generated(*kind, sizes.mixed_nodes, 7)
            .with_ordering(OrderingMethod::NestedDissection)
            .with_memory(MemoryBudget::FractionOfPeak(0.3))
            .to_json();
        // Same config through all three endpoints: the first call plans,
        // the rest hit.
        requests.push(("/plan", config.clone()));
        requests.push(("/schedule", config.clone()));
        requests.push(("/report", config));
        // And one prebuilt-tree config interleaved for variety.
        if index == 0 {
            let prebuilt = EngineConfig::prebuilt(treemem::gadgets::harpoon(4, 400, 1))
                .with_memory(MemoryBudget::FractionOfPeak(0.0))
                .to_json();
            requests.push(("/report", prebuilt));
        }
    }
    run_mix("mixed_kinds", addr, &requests, violations)
}

fn cold_scan(addr: SocketAddr, sizes: &Sizes, violations: &mut Violations) -> ScenarioResult {
    let requests: Vec<(&str, String)> = (0..sizes.cold_scan_requests as u64)
        .map(|seed| ("/report", grid_config(sizes.cold_scan_nodes, 1_000 + seed)))
        .collect();
    let result = run_mix("cold_scan", addr, &requests, violations);
    violations.check(
        result.cache_hits == 0,
        format!("cold scan saw {} unexpected cache hits", result.cache_hits),
    );
    result
}

/// One cold numeric `/report` to compute and cache the factor, then a
/// hammer of `POST /solve` requests against it: the serving story of the
/// blocked kernel — factorize once, answer solves from the cache.
fn solve_throughput(
    addr: SocketAddr,
    sizes: &Sizes,
    violations: &mut Violations,
) -> (ScenarioResult, String) {
    let started = Instant::now();
    let config = EngineConfig::generated(ProblemKind::Grid2d, sizes.solve_nodes, 31)
        .with_ordering(OrderingMethod::NestedDissection)
        .with_numeric(true)
        .to_json();
    let (cold_seconds, response) = timed_post(addr, "/report", &config, violations);
    violations.check(
        !response.cache_hit(),
        "solve corpus report unexpectedly hit the plan cache",
    );
    let Some(hash) = response.header("x-config-hash").map(str::to_string) else {
        violations.check(false, "numeric report carried no X-Config-Hash header");
        return (
            ScenarioResult {
                name: "solve_throughput",
                requests: 1,
                wall_seconds: started.elapsed().as_secs_f64(),
                latency: latency_summary(&[cold_seconds]),
                hit_latency: LatencySummary::default(),
                miss_latency: LatencySummary::default(),
                cache_hits: 0,
                expected_4xx: 0,
            },
            String::new(),
        );
    };

    let mut solves = Vec::new();
    let mut worst_residual = 0.0f64;
    for request in 0..sizes.solve_requests {
        let body = format!(
            "{{\"config_hash\": \"{hash}\", \"count\": 4, \"seed\": {}}}",
            request + 1
        );
        let (seconds, response) = timed_post(addr, "/solve", &body, violations);
        violations.check(
            response.cache_hit(),
            format!("hot solve {request} missed the factor cache"),
        );
        let residual = Json::parse(&response.body)
            .ok()
            .and_then(|json| json.get("max_residual").and_then(Json::as_f64))
            .unwrap_or(f64::INFINITY);
        violations.check(
            residual < 1e-6,
            format!("solve {request} residual {residual:e} above 1e-6"),
        );
        worst_residual = worst_residual.max(residual);
        solves.push(seconds);
    }

    let solve_summary = latency_summary(&solves);
    let speedup = cold_seconds / solve_summary.p50_seconds.max(1e-9);
    if sizes.enforce_speedup {
        violations.check(
            speedup >= REQUIRED_SPEEDUP,
            format!(
                "hot /solve p50 only {speedup:.1}x below the cold factorization \
                 (required {REQUIRED_SPEEDUP}x)"
            ),
        );
    }
    println!(
        "loadgen: solve {} nodes: cold report {:.4}s, hot solve p50 {:.4}s ({:.0}x), \
         worst residual {:.2e}",
        sizes.solve_nodes, cold_seconds, solve_summary.p50_seconds, speedup, worst_residual
    );

    let headline = format!(
        "  \"solve\": {{\"corpus_nodes\": {}, \"rhs_per_request\": 4, \"solve_requests\": {}, \
         \"cold_report_seconds\": {:.6}, \"hot_solve_p50_seconds\": {:.6}, \"speedup\": {:.3}, \
         \"speedup_enforced\": {}, \"worst_residual\": {:e}}},\n",
        sizes.solve_nodes,
        solves.len(),
        cold_seconds,
        solve_summary.p50_seconds,
        speedup,
        sizes.enforce_speedup,
        worst_residual,
    );
    let scenario = ScenarioResult {
        name: "solve_throughput",
        requests: 1 + solves.len(),
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&[vec![cold_seconds], solves.clone()].concat()),
        hit_latency: solve_summary,
        miss_latency: latency_summary(&[cold_seconds]),
        cache_hits: solves.len(),
        expected_4xx: 0,
    };
    (scenario, headline)
}

fn malformed(addr: SocketAddr, violations: &mut Violations) -> ScenarioResult {
    let started = Instant::now();
    let depth_bomb = "[".repeat(100_000);
    // One payload per fixed parser bug, plus assorted garbage.
    let cases: Vec<(&str, String)> = vec![
        ("depth bomb", depth_bomb),
        (
            "broken surrogate escape",
            "{\"solver\": \"\\ud83d\\uzz00\"}".to_string(),
        ),
        ("raw control char", "{\"solver\": \"a\nb\"}".to_string()),
        ("truncated number", "{\"amalgamation\": 1.}".to_string()),
        (
            "duplicate key",
            "{\"solver\": \"minmem\", \"solver\": \"liu\"}".to_string(),
        ),
        ("not json", "colorless green ideas".to_string()),
        ("empty body", String::new()),
    ];
    let mut samples = Vec::new();
    let mut rejected = 0usize;
    for (label, body) in &cases {
        let request_started = Instant::now();
        let response = client::post(addr, "/report", body).unwrap_or_else(|e| {
            eprintln!("loadgen: transport failure on {label}: {e}");
            std::process::exit(1);
        });
        samples.push(request_started.elapsed().as_secs_f64());
        violations.check(
            (400..500).contains(&response.status),
            format!("{label} answered {} instead of a 4xx", response.status),
        );
        if (400..500).contains(&response.status) {
            rejected += 1;
        }
    }
    // Framing-level garbage (not even HTTP).
    let response = client::exchange(addr, b"BOGUS\r\n\r\n").unwrap_or_else(|e| {
        eprintln!("loadgen: transport failure on framing garbage: {e}");
        std::process::exit(1);
    });
    violations.check(
        response.status == 400,
        format!("framing garbage answered {}", response.status),
    );
    rejected += usize::from(response.status == 400);
    // The server survived all of it.
    let health = client::get(addr, "/healthz").map(|r| r.status);
    violations.check(
        health.as_ref().copied().unwrap_or(0) == 200,
        "server unhealthy after malformed barrage",
    );
    ScenarioResult {
        name: "malformed",
        requests: cases.len() + 1,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&samples),
        hit_latency: LatencySummary::default(),
        miss_latency: LatencySummary::default(),
        cache_hits: 0,
        expected_4xx: rejected,
    }
}

fn spawn_server() -> ServerHandle {
    Server::spawn(ServerConfig {
        cache_capacity: CACHE_CAPACITY,
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("loadgen: cannot boot the server: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes = &FULL;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => sizes = &QUICK,
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("loadgen: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("usage: loadgen [--quick] [--out PATH]   (unknown flag {other})");
                std::process::exit(2);
            }
        }
    }

    let handle = spawn_server();
    let addr = handle.addr();
    println!(
        "loadgen: serving on http://{addr} ({} mode, cache capacity {CACHE_CAPACITY})",
        sizes.mode
    );
    let mut violations = Violations(Vec::new());

    let (headline_scenario, headline_json) = cache_speedup(addr, sizes, &mut violations);
    let mut scenarios = vec![headline_scenario];
    scenarios.push(hot_set_skew(addr, sizes, &mut violations));
    scenarios.push(parallel_hot(addr, sizes, &mut violations));
    scenarios.push(mixed_kinds(addr, sizes, &mut violations));
    scenarios.push(cold_scan(addr, sizes, &mut violations));
    let (solve_scenario, solve_json) = solve_throughput(addr, sizes, &mut violations);
    scenarios.push(solve_scenario);
    scenarios.push(malformed(addr, &mut violations));

    // Final server-side view: cache hit rate, eviction counts, stage
    // latency percentiles.
    let stats_body = client::get(addr, "/stats")
        .map(|response| response.body)
        .unwrap_or_else(|e| {
            eprintln!("loadgen: /stats failed: {e}");
            std::process::exit(1);
        });
    let stats = Json::parse(&stats_body).unwrap_or(Json::Null);
    let cache_hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let evictions = stats
        .get("cache")
        .and_then(|c| c.get("evictions"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    violations.check(cache_hits > 0, "server finished with zero cache hits");
    violations.check(
        evictions > 0,
        "cold scan produced no cache evictions (capacity not exercised)",
    );
    violations.check(
        handle.shutdown().is_ok(),
        "server did not shut down cleanly",
    );
    println!("loadgen: clean shutdown, {cache_hits} cache hits, {evictions} evictions");

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_server/v1\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", sizes.mode);
    let _ = writeln!(json, "  \"cache_capacity\": {CACHE_CAPACITY},");
    json.push_str(&headline_json);
    json.push_str(&solve_json);
    json.push_str("  \"scenarios\": [\n");
    for (index, scenario) in scenarios.iter().enumerate() {
        json.push_str(&scenario_json(scenario));
        json.push_str(if index + 1 < scenarios.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    // Embed the final /stats document verbatim (it is already JSON).
    let _ = writeln!(json, "  \"server_stats\": {}", stats_body.trim_end());
    json.push_str("}\n");

    let path = out.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::var_os("TREEMEM_SWEEP_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."))
            .join("BENCH_server.json")
    });
    if let Err(error) = std::fs::write(&path, &json) {
        eprintln!("loadgen: cannot write {}: {error}", path.display());
        std::process::exit(1);
    }
    println!("loadgen: wrote {}", path.display());

    if !violations.0.is_empty() {
        eprintln!("loadgen: {} violated invariant(s)", violations.0.len());
        std::process::exit(1);
    }
    println!("loadgen: all invariants held");
}
