//! `loadgen` — replay seeded configuration mixes against a spawned server
//! and emit `BENCH_server.json`.
//!
//! The binary boots `server::Server` in-process on an ephemeral port, then
//! drives it over real loopback TCP through `server::client`:
//!
//! * `cache_speedup` — the headline measurement: cold `/report` requests
//!   (distinct seeds, every one a plan-cache miss) versus hot repeats of one
//!   configuration on the 10⁵-node nested-dissection corpus, asserting the
//!   cached p50 is ≥5× lower and that a cache-hit report is identical to the
//!   cold-path report up to wall-clock timings;
//! * `hot_set_skew` — a small hot set with skewed popularity;
//! * `parallel_hot` — the same hot set hammered from several client threads;
//! * `mixed_kinds` — every problem kind across `/plan`, `/schedule` and
//!   `/report`;
//! * `cold_scan` — unique seeds overflowing the plan cache (evictions);
//! * `solve_throughput` — one cold numeric `/report` computes and caches a
//!   factor, then `POST /solve` is hammered against it: every solve must be
//!   a factor-cache hit with a green residual, and the hot solve p50 must
//!   sit far below the cold factorization;
//! * `malformed` — one request per fixed parser bug (depth bomb, broken
//!   surrogate escape, raw control character) plus framing garbage,
//!   asserting every one is answered with a 4xx and the server keeps
//!   serving.
//!
//! `loadgen distributed` is the multi-*process* scenario: it spawns the
//! `serve` binary as a coordinator plus two `--role worker` processes on
//! loopback, factors the nested-dissection corpus (10⁶ nodes full, 10⁵
//! quick) through `POST /report` with a `distributed` section, and gates
//! the merged factor's bit-identity against a single-process reference
//! server (identical `factor_nnz` and bit-identical seeded-solve
//! `max_residual`).  A chaos pass then SIGKILLs a lease-holding worker
//! mid-job and requires the job to complete via lease re-issue with zero
//! orphaned leases and zero non-injected 5xx.  The result is
//! `BENCH_distributed.json`.
//!
//! Flags: `--quick` shrinks the corpus for the CI smoke job (and relaxes the
//! ≥5× assertion, which needs the big corpus to be meaningful); `--out PATH`
//! overrides the output path (default `BENCH_server.json` in the current
//! directory, or `TREEMEM_SWEEP_DIR` if set).  Any violated invariant makes
//! the process exit non-zero, so CI can gate on it directly.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

use engine::json::Json;
use engine::prelude::*;
use perfprof::timing::{latency_summary, LatencySummary};
use prng::{Rng, StdRng};
use server::client::{self, ClientResponse};
use server::{Server, ServerConfig, ServerHandle};
use sparsemat::gen::ProblemKind;

/// Cache capacity the server is spawned with; `cold_scan` issues more
/// distinct configurations than this to force evictions.
const CACHE_CAPACITY: usize = 16;
/// The headline requirement: cached-plan p50 at least this many times lower.
const REQUIRED_SPEEDUP: f64 = 5.0;

struct Sizes {
    mode: &'static str,
    headline_nodes: usize,
    headline_cold: usize,
    headline_hot: usize,
    hot_set_nodes: usize,
    hot_set_requests: usize,
    mixed_nodes: usize,
    cold_scan_nodes: usize,
    cold_scan_requests: usize,
    solve_nodes: usize,
    solve_requests: usize,
    enforce_speedup: bool,
}

const FULL: Sizes = Sizes {
    mode: "full",
    headline_nodes: 100_000,
    headline_cold: 3,
    headline_hot: 12,
    hot_set_nodes: 5_000,
    hot_set_requests: 60,
    mixed_nodes: 1_500,
    cold_scan_nodes: 2_000,
    cold_scan_requests: 24,
    solve_nodes: 50_000,
    solve_requests: 40,
    enforce_speedup: true,
};

const QUICK: Sizes = Sizes {
    mode: "quick",
    headline_nodes: 10_000,
    headline_cold: 2,
    headline_hot: 6,
    hot_set_nodes: 1_000,
    hot_set_requests: 24,
    mixed_nodes: 600,
    cold_scan_nodes: 500,
    cold_scan_requests: 20,
    solve_nodes: 2_000,
    solve_requests: 12,
    enforce_speedup: false,
};

/// Outcome of one scenario, serialised into the report.
struct ScenarioResult {
    name: &'static str,
    requests: usize,
    wall_seconds: f64,
    latency: LatencySummary,
    hit_latency: LatencySummary,
    miss_latency: LatencySummary,
    cache_hits: usize,
    expected_4xx: usize,
}

fn scenario_json(result: &ScenarioResult) -> String {
    format!(
        "    {{\"name\": \"{}\", \"requests\": {}, \"wall_seconds\": {:.6}, \
         \"throughput_rps\": {:.3}, \"cache_hits\": {}, \"expected_4xx\": {},\n     \
         \"latency\": {},\n     \"hit_latency\": {},\n     \"miss_latency\": {}}}",
        result.name,
        result.requests,
        result.wall_seconds,
        result.requests as f64 / result.wall_seconds.max(1e-9),
        result.cache_hits,
        result.expected_4xx,
        result.latency.to_json(),
        result.hit_latency.to_json(),
        result.miss_latency.to_json(),
    )
}

/// A failed invariant: recorded, reported, and turned into a non-zero exit.
struct Violations(Vec<String>);

impl Violations {
    fn check(&mut self, ok: bool, what: impl Into<String>) {
        if !ok {
            let what = what.into();
            eprintln!("loadgen: VIOLATION: {what}");
            self.0.push(what);
        }
    }
}

fn grid_config(nodes: usize, seed: u64) -> String {
    EngineConfig::generated(ProblemKind::Grid2d, nodes, seed)
        .with_ordering(OrderingMethod::NestedDissection)
        .with_memory(MemoryBudget::FractionOfPeak(0.5))
        .to_json()
}

/// POST expecting a 200; records latency and cache disposition.
fn timed_post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    violations: &mut Violations,
) -> (f64, ClientResponse) {
    let started = Instant::now();
    let response = client::post(addr, path, body).unwrap_or_else(|e| {
        eprintln!("loadgen: transport failure: {e}");
        std::process::exit(1);
    });
    let seconds = started.elapsed().as_secs_f64();
    violations.check(
        response.status == 200,
        format!(
            "{path} answered {} ({})",
            response.status,
            response.body.trim()
        ),
    );
    (seconds, response)
}

fn run_mix(
    name: &'static str,
    addr: SocketAddr,
    requests: &[(&str, String)],
    violations: &mut Violations,
) -> ScenarioResult {
    let started = Instant::now();
    let mut samples = Vec::new();
    let mut hit_samples = Vec::new();
    let mut miss_samples = Vec::new();
    for (path, body) in requests {
        let (seconds, response) = timed_post(addr, path, body, violations);
        samples.push(seconds);
        if response.cache_hit() {
            hit_samples.push(seconds);
        } else {
            miss_samples.push(seconds);
        }
    }
    ScenarioResult {
        name,
        requests: requests.len(),
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&samples),
        hit_latency: latency_summary(&hit_samples),
        miss_latency: latency_summary(&miss_samples),
        cache_hits: hit_samples.len(),
        expected_4xx: 0,
    }
}

/// The headline cold-vs-cached measurement plus the bit-identity check.
fn cache_speedup(
    addr: SocketAddr,
    sizes: &Sizes,
    violations: &mut Violations,
) -> (ScenarioResult, String) {
    let started = Instant::now();
    let mut cold = Vec::new();
    let mut hot = Vec::new();
    let mut cold_body = String::new();
    let mut hot_body = String::new();
    for seed in 0..sizes.headline_cold as u64 {
        let config = grid_config(sizes.headline_nodes, seed);
        let (seconds, response) = timed_post(addr, "/report", &config, violations);
        violations.check(
            !response.cache_hit(),
            format!("headline seed {seed} unexpectedly hit the cache"),
        );
        cold.push(seconds);
        if seed == 0 {
            cold_body = response.body;
        }
    }
    let hot_config = grid_config(sizes.headline_nodes, 0);
    for repeat in 0..sizes.headline_hot {
        let (seconds, response) = timed_post(addr, "/report", &hot_config, violations);
        violations.check(
            response.cache_hit(),
            format!("headline repeat {repeat} missed the cache"),
        );
        hot.push(seconds);
        if repeat == 0 {
            hot_body = response.body;
        }
    }

    // A cache-hit report is the cold-path report, minus wall-clock noise.
    let fingerprint_match = client::report_identity(&cold_body).is_some()
        && client::report_identity(&cold_body) == client::report_identity(&hot_body);
    violations.check(
        fingerprint_match,
        "cache-hit report differs from the cold-path report",
    );

    let cold_summary = latency_summary(&cold);
    let hot_summary = latency_summary(&hot);
    let speedup = cold_summary.p50_seconds / hot_summary.p50_seconds.max(1e-9);
    if sizes.enforce_speedup {
        violations.check(
            speedup >= REQUIRED_SPEEDUP,
            format!("cached-plan speedup {speedup:.1}x below the required {REQUIRED_SPEEDUP}x"),
        );
    }
    println!(
        "loadgen: headline {} nodes: cold p50 {:.4}s, cached p50 {:.4}s, speedup {:.1}x",
        sizes.headline_nodes, cold_summary.p50_seconds, hot_summary.p50_seconds, speedup
    );

    let headline = format!(
        "  \"headline\": {{\"corpus_nodes\": {}, \"cold_requests\": {}, \"hot_requests\": {}, \
         \"cold_p50_seconds\": {:.6}, \"hot_p50_seconds\": {:.6}, \"speedup\": {:.3}, \
         \"required_speedup\": {:.1}, \"speedup_enforced\": {}, \"fingerprint_match\": {}}},\n",
        sizes.headline_nodes,
        cold.len(),
        hot.len(),
        cold_summary.p50_seconds,
        hot_summary.p50_seconds,
        speedup,
        REQUIRED_SPEEDUP,
        sizes.enforce_speedup,
        fingerprint_match,
    );
    let scenario = ScenarioResult {
        name: "cache_speedup",
        requests: cold.len() + hot.len(),
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&[cold.clone(), hot.clone()].concat()),
        hit_latency: hot_summary,
        miss_latency: cold_summary,
        cache_hits: hot.len(),
        expected_4xx: 0,
    };
    (scenario, headline)
}

fn hot_set_skew(addr: SocketAddr, sizes: &Sizes, violations: &mut Violations) -> ScenarioResult {
    let mut rng = StdRng::seed_from_u64(0x10ad_6e11);
    let hot_set: Vec<String> = (0..6)
        .map(|seed| grid_config(sizes.hot_set_nodes, 100 + seed))
        .collect();
    let requests: Vec<(&str, String)> = (0..sizes.hot_set_requests)
        .map(|_| {
            // Skew: the minimum of two uniform draws favours low indices
            // (index 0 ~ 30%, index 5 ~ 3%).
            let pick = rng
                .gen_range(0..hot_set.len())
                .min(rng.gen_range(0..hot_set.len()));
            ("/report", hot_set[pick].clone())
        })
        .collect();
    run_mix("hot_set_skew", addr, &requests, violations)
}

fn parallel_hot(addr: SocketAddr, sizes: &Sizes, violations: &mut Violations) -> ScenarioResult {
    let hot_set: Vec<String> = (0..4)
        .map(|seed| grid_config(sizes.hot_set_nodes, 200 + seed))
        .collect();
    // Warm the cache so the parallel phase measures hit throughput.
    for config in &hot_set {
        timed_post(addr, "/report", config, violations);
    }
    let threads = 4;
    let per_thread = (sizes.hot_set_requests / threads).max(3);
    let started = Instant::now();
    let mut all_samples: Vec<f64> = Vec::new();
    let mut hits = 0usize;
    std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..threads)
            .map(|thread| {
                let hot_set = &hot_set;
                scope.spawn(move || {
                    let mut samples = Vec::new();
                    let mut hits = 0usize;
                    let mut failures = 0usize;
                    for i in 0..per_thread {
                        let config = &hot_set[(thread + i) % hot_set.len()];
                        let started = Instant::now();
                        match client::post(addr, "/report", config) {
                            Ok(response) if response.status == 200 => {
                                samples.push(started.elapsed().as_secs_f64());
                                if response.cache_hit() {
                                    hits += 1;
                                }
                            }
                            _ => failures += 1,
                        }
                    }
                    (samples, hits, failures)
                })
            })
            .collect();
        for task in tasks {
            let (samples, thread_hits, failures) = task.join().expect("client thread");
            violations.check(
                failures == 0,
                format!("{failures} parallel requests failed"),
            );
            all_samples.extend(samples);
            hits += thread_hits;
        }
    });
    let summary = latency_summary(&all_samples);
    ScenarioResult {
        name: "parallel_hot",
        requests: threads * per_thread,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: summary,
        hit_latency: summary,
        miss_latency: LatencySummary::default(),
        cache_hits: hits,
        expected_4xx: 0,
    }
}

fn mixed_kinds(addr: SocketAddr, sizes: &Sizes, violations: &mut Violations) -> ScenarioResult {
    let mut requests: Vec<(&str, String)> = Vec::new();
    for (index, kind) in ProblemKind::ALL.iter().enumerate() {
        let config = EngineConfig::generated(*kind, sizes.mixed_nodes, 7)
            .with_ordering(OrderingMethod::NestedDissection)
            .with_memory(MemoryBudget::FractionOfPeak(0.3))
            .to_json();
        // Same config through all three endpoints: the first call plans,
        // the rest hit.
        requests.push(("/plan", config.clone()));
        requests.push(("/schedule", config.clone()));
        requests.push(("/report", config));
        // And one prebuilt-tree config interleaved for variety.
        if index == 0 {
            let prebuilt = EngineConfig::prebuilt(treemem::gadgets::harpoon(4, 400, 1))
                .with_memory(MemoryBudget::FractionOfPeak(0.0))
                .to_json();
            requests.push(("/report", prebuilt));
        }
    }
    run_mix("mixed_kinds", addr, &requests, violations)
}

fn cold_scan(addr: SocketAddr, sizes: &Sizes, violations: &mut Violations) -> ScenarioResult {
    let requests: Vec<(&str, String)> = (0..sizes.cold_scan_requests as u64)
        .map(|seed| ("/report", grid_config(sizes.cold_scan_nodes, 1_000 + seed)))
        .collect();
    let result = run_mix("cold_scan", addr, &requests, violations);
    violations.check(
        result.cache_hits == 0,
        format!("cold scan saw {} unexpected cache hits", result.cache_hits),
    );
    result
}

/// One cold numeric `/report` to compute and cache the factor, then a
/// hammer of `POST /solve` requests against it: the serving story of the
/// blocked kernel — factorize once, answer solves from the cache.
fn solve_throughput(
    addr: SocketAddr,
    sizes: &Sizes,
    violations: &mut Violations,
) -> (ScenarioResult, String) {
    let started = Instant::now();
    let config = EngineConfig::generated(ProblemKind::Grid2d, sizes.solve_nodes, 31)
        .with_ordering(OrderingMethod::NestedDissection)
        .with_numeric(true)
        .to_json();
    let (cold_seconds, response) = timed_post(addr, "/report", &config, violations);
    violations.check(
        !response.cache_hit(),
        "solve corpus report unexpectedly hit the plan cache",
    );
    let Some(hash) = response.header("x-config-hash").map(str::to_string) else {
        violations.check(false, "numeric report carried no X-Config-Hash header");
        return (
            ScenarioResult {
                name: "solve_throughput",
                requests: 1,
                wall_seconds: started.elapsed().as_secs_f64(),
                latency: latency_summary(&[cold_seconds]),
                hit_latency: LatencySummary::default(),
                miss_latency: LatencySummary::default(),
                cache_hits: 0,
                expected_4xx: 0,
            },
            String::new(),
        );
    };

    let mut solves = Vec::new();
    let mut worst_residual = 0.0f64;
    for request in 0..sizes.solve_requests {
        let body = format!(
            "{{\"config_hash\": \"{hash}\", \"count\": 4, \"seed\": {}}}",
            request + 1
        );
        let (seconds, response) = timed_post(addr, "/solve", &body, violations);
        violations.check(
            response.cache_hit(),
            format!("hot solve {request} missed the factor cache"),
        );
        let residual = Json::parse(&response.body)
            .ok()
            .and_then(|json| json.get("max_residual").and_then(Json::as_f64))
            .unwrap_or(f64::INFINITY);
        violations.check(
            residual < 1e-6,
            format!("solve {request} residual {residual:e} above 1e-6"),
        );
        worst_residual = worst_residual.max(residual);
        solves.push(seconds);
    }

    let solve_summary = latency_summary(&solves);
    let speedup = cold_seconds / solve_summary.p50_seconds.max(1e-9);
    if sizes.enforce_speedup {
        violations.check(
            speedup >= REQUIRED_SPEEDUP,
            format!(
                "hot /solve p50 only {speedup:.1}x below the cold factorization \
                 (required {REQUIRED_SPEEDUP}x)"
            ),
        );
    }
    println!(
        "loadgen: solve {} nodes: cold report {:.4}s, hot solve p50 {:.4}s ({:.0}x), \
         worst residual {:.2e}",
        sizes.solve_nodes, cold_seconds, solve_summary.p50_seconds, speedup, worst_residual
    );

    let headline = format!(
        "  \"solve\": {{\"corpus_nodes\": {}, \"rhs_per_request\": 4, \"solve_requests\": {}, \
         \"cold_report_seconds\": {:.6}, \"hot_solve_p50_seconds\": {:.6}, \"speedup\": {:.3}, \
         \"speedup_enforced\": {}, \"worst_residual\": {:e}}},\n",
        sizes.solve_nodes,
        solves.len(),
        cold_seconds,
        solve_summary.p50_seconds,
        speedup,
        sizes.enforce_speedup,
        worst_residual,
    );
    let scenario = ScenarioResult {
        name: "solve_throughput",
        requests: 1 + solves.len(),
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&[vec![cold_seconds], solves.clone()].concat()),
        hit_latency: solve_summary,
        miss_latency: latency_summary(&[cold_seconds]),
        cache_hits: solves.len(),
        expected_4xx: 0,
    };
    (scenario, headline)
}

fn malformed(addr: SocketAddr, violations: &mut Violations) -> ScenarioResult {
    let started = Instant::now();
    let depth_bomb = "[".repeat(100_000);
    // One payload per fixed parser bug, plus assorted garbage.
    let cases: Vec<(&str, String)> = vec![
        ("depth bomb", depth_bomb),
        (
            "broken surrogate escape",
            "{\"solver\": \"\\ud83d\\uzz00\"}".to_string(),
        ),
        ("raw control char", "{\"solver\": \"a\nb\"}".to_string()),
        ("truncated number", "{\"amalgamation\": 1.}".to_string()),
        (
            "duplicate key",
            "{\"solver\": \"minmem\", \"solver\": \"liu\"}".to_string(),
        ),
        ("not json", "colorless green ideas".to_string()),
        ("empty body", String::new()),
    ];
    let mut samples = Vec::new();
    let mut rejected = 0usize;
    for (label, body) in &cases {
        let request_started = Instant::now();
        let response = client::post(addr, "/report", body).unwrap_or_else(|e| {
            eprintln!("loadgen: transport failure on {label}: {e}");
            std::process::exit(1);
        });
        samples.push(request_started.elapsed().as_secs_f64());
        violations.check(
            (400..500).contains(&response.status),
            format!("{label} answered {} instead of a 4xx", response.status),
        );
        if (400..500).contains(&response.status) {
            rejected += 1;
        }
    }
    // Framing-level garbage (not even HTTP).
    let response = client::exchange(addr, b"BOGUS\r\n\r\n").unwrap_or_else(|e| {
        eprintln!("loadgen: transport failure on framing garbage: {e}");
        std::process::exit(1);
    });
    violations.check(
        response.status == 400,
        format!("framing garbage answered {}", response.status),
    );
    rejected += usize::from(response.status == 400);
    // The server survived all of it.
    let health = client::get(addr, "/healthz").map(|r| r.status);
    violations.check(
        health.as_ref().copied().unwrap_or(0) == 200,
        "server unhealthy after malformed barrage",
    );
    ScenarioResult {
        name: "malformed",
        requests: cases.len() + 1,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&samples),
        hit_latency: LatencySummary::default(),
        miss_latency: LatencySummary::default(),
        cache_hits: 0,
        expected_4xx: rejected,
    }
}

/// The fault plan the chaos pass arms: six rules over six distinct points,
/// mixing all three actions (sleep, panic, drop) across the planning,
/// scheduling, and numeric layers.  Each rule fires exactly once.
const CHAOS_FAULT_PLAN: &str = "sleep:40@plan:ordering,panic@plan:symbolic#2,\
     panic@execute:numeric#2,drop@parexec:task#2,panic@arena:alloc#3,sleep:30@schedule:io";

/// POST with chaos-mode retries: 5xx (an injected fault landed on this
/// request) and transport failures retry after a short pause, 503/504
/// honor `Retry-After`.  Returns the final response plus how many 5xx
/// responses were absorbed along the way.
fn chaos_post(addr: SocketAddr, path: &str, body: &str) -> (ClientResponse, usize) {
    let mut absorbed_5xx = 0usize;
    for _ in 0..4 {
        match client::post(addr, path, body) {
            Ok(response) if response.status >= 500 => {
                absorbed_5xx += 1;
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Ok(response) if response.status == 503 => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Ok(response) => return (response, absorbed_5xx),
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(25)),
        }
    }
    let last = client::post_with_retry(addr, path, body, 2, std::time::Duration::from_millis(100))
        .unwrap_or_else(|e| {
            eprintln!("loadgen: chaos transport failure on {path}: {e}");
            std::process::exit(1);
        });
    (last, absorbed_5xx)
}

/// The chaos harness: collect uninjected reference reports from a fresh
/// server, then arm the fault-injection registry and fire ≥200 mixed
/// requests at a second server while a sidecar thread polls `/healthz`.
/// Afterwards the faults are cleared and every configuration must recover:
/// identical reports, working cache, and a deadline probe that turns into
/// a prompt 504.
fn chaos(sizes: &Sizes, violations: &mut Violations) -> (ScenarioResult, String) {
    let started = Instant::now();

    // The request mix: plain, numeric, parallel-numeric, prebuilt, and a
    // plan-only configuration.  Sized well below the headline corpus so
    // ≥200 requests stay tractable.
    let nodes = sizes.hot_set_nodes;
    let plain = grid_config(nodes, 900);
    let numeric = EngineConfig::generated(ProblemKind::Grid2d, nodes.min(2_000), 901)
        .with_numeric(true)
        .to_json();
    let parallel = EngineConfig::generated(ProblemKind::Grid2d, nodes.min(2_000), 902)
        .with_numeric(true)
        .with_parallel(engine::ParallelConfig::with_workers(2).with_max_tasks(8))
        .to_json();
    let prebuilt = EngineConfig::prebuilt(treemem::gadgets::harpoon(4, 400, 1))
        .with_memory(MemoryBudget::FractionOfPeak(0.0))
        .to_json();
    let plan_only = grid_config(nodes.min(2_000), 903);
    let reports: Vec<&String> = vec![&plain, &numeric, &parallel, &prebuilt];

    // Reference pass: a fresh, fault-free server establishes the ground
    // truth every later report must match bit-for-bit (minus timings).
    engine::faultinject::clear();
    let reference = spawn_server();
    let mut reference_identity = Vec::new();
    for config in &reports {
        let (_, response) = timed_post(reference.addr(), "/report", config, violations);
        let identity = client::report_fingerprint(&response.body);
        violations.check(identity.is_some(), "reference report is not a JSON object");
        reference_identity.push(identity);
    }
    violations.check(
        reference.shutdown().is_ok(),
        "reference server did not shut down cleanly",
    );

    // Chaos pass: arm the fault plan, boot the victim server, and start the
    // health poller.
    let injected_before = engine::faultinject::injected();
    let rules = engine::faultinject::parse_plan(CHAOS_FAULT_PLAN).unwrap_or_else(|e| {
        eprintln!("loadgen: bad chaos fault plan: {e}");
        std::process::exit(1);
    });
    let rule_count = rules.len();
    engine::faultinject::install(rules);
    let handle = spawn_server();
    let addr = handle.addr();

    let stop_poller = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let poller = {
        let stop = std::sync::Arc::clone(&stop_poller);
        std::thread::spawn(move || {
            let mut probes = 0usize;
            let mut unhealthy = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match client::get(addr, "/healthz") {
                    Ok(response) if response.status == 200 => {}
                    _ => unhealthy += 1,
                }
                probes += 1;
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            (probes, unhealthy)
        })
    };

    let total_requests = 220usize.max(40 * reports.len());
    let mut samples = Vec::new();
    let mut hit_samples = Vec::new();
    let mut miss_samples = Vec::new();
    let mut absorbed_5xx = 0usize;
    let mut final_failures = 0usize;
    let mut solve_hash: Option<String> = None;
    for index in 0..total_requests {
        let slot = index % (reports.len() + 2);
        let request_started = Instant::now();
        let (response, fivexx) = match slot {
            s if s < reports.len() => chaos_post(addr, "/report", reports[s]),
            s if s == reports.len() => chaos_post(addr, "/plan", &plan_only),
            _ => match &solve_hash {
                Some(hash) => {
                    let body =
                        format!("{{\"config_hash\": \"{hash}\", \"count\": 2, \"seed\": {index}}}");
                    chaos_post(addr, "/solve", &body)
                }
                None => chaos_post(addr, "/report", &numeric),
            },
        };
        let seconds = request_started.elapsed().as_secs_f64();
        absorbed_5xx += fivexx;
        samples.push(seconds);
        if response.cache_hit() {
            hit_samples.push(seconds);
        } else {
            miss_samples.push(seconds);
        }
        if response.status != 200 {
            final_failures += 1;
        } else if slot < reports.len() {
            // Every successful report — retried past an injected fault or
            // not — is bit-identical to the uninjected reference.
            violations.check(
                client::report_fingerprint(&response.body) == reference_identity[slot],
                format!("chaos report for mix slot {slot} diverged from the reference"),
            );
            // Parallel runs never exceed their ledger budget except via the
            // documented idle force-admission path.
            if slot == 2 {
                if let Ok(json) = Json::parse(&response.body) {
                    if let Some(section) = json.get("parallel") {
                        let budget = section.get("budget_entries").and_then(Json::as_u64);
                        let peak = section
                            .get("measured_peak_entries")
                            .and_then(Json::as_u64)
                            .unwrap_or(0);
                        let forced = section
                            .get("forced_admissions")
                            .and_then(Json::as_u64)
                            .unwrap_or(0);
                        if let Some(budget) = budget {
                            violations.check(
                                peak <= budget || forced > 0,
                                format!("budget overrun: peak {peak} > budget {budget} without forced admissions"),
                            );
                        }
                    }
                }
            }
            if slot == 1 && solve_hash.is_none() {
                solve_hash = response.header("x-config-hash").map(str::to_string);
            }
        }
    }
    let injected = engine::faultinject::injected() - injected_before;
    violations.check(
        injected >= 4,
        format!("only {injected} of {rule_count} chaos faults fired"),
    );
    // Every terminal failure (after retries) must be attributable to an
    // injected fault; the mix itself contains nothing malformed.
    violations.check(
        absorbed_5xx as u64 + final_failures as u64 <= injected,
        format!(
            "{absorbed_5xx} retried + {final_failures} terminal failures exceed the {injected} injected faults"
        ),
    );
    violations.check(
        final_failures == 0,
        format!("{final_failures} requests failed even after retries"),
    );

    // Recovery: faults cleared, every configuration serves again, repeats
    // hit the cache, and the reports still match the fresh-server truth.
    engine::faultinject::clear();
    for (slot, config) in reports.iter().enumerate() {
        let (_, first) = timed_post(addr, "/report", config, violations);
        violations.check(
            client::report_fingerprint(&first.body) == reference_identity[slot],
            format!("post-chaos report for mix slot {slot} diverged from the reference"),
        );
        let (_, second) = timed_post(addr, "/report", config, violations);
        violations.check(
            second.cache_hit(),
            format!("post-chaos repeat of mix slot {slot} missed the plan cache"),
        );
    }

    // Deadline probe: a cold headline-sized configuration under a 50 ms
    // deadline answers 504 promptly (the strict 2x bound holds in release
    // full mode; quick/debug runs get generous slack), and the very next
    // uninjected request for the same configuration completes.
    let deadline_config = grid_config(sizes.headline_nodes, 990);
    let probe_started = Instant::now();
    let probe = client::post_with_headers(
        addr,
        "/report",
        &[("X-Deadline-Ms", "50")],
        &deadline_config,
    )
    .unwrap_or_else(|e| {
        eprintln!("loadgen: deadline probe transport failure: {e}");
        std::process::exit(1);
    });
    let probe_seconds = probe_started.elapsed().as_secs_f64();
    violations.check(
        probe.status == 504,
        format!("deadline probe answered {} instead of 504", probe.status),
    );
    let probe_bound = if sizes.enforce_speedup { 0.100 } else { 1.0 };
    violations.check(
        probe_seconds <= probe_bound,
        format!("deadline probe took {probe_seconds:.3}s, over the {probe_bound:.3}s bound"),
    );
    let (_, after) = timed_post(addr, "/report", &deadline_config, violations);
    violations.check(
        after.status == 200,
        "request after the expired deadline did not complete",
    );

    stop_poller.store(true, std::sync::atomic::Ordering::Relaxed);
    let (health_probes, unhealthy) = poller.join().expect("health poller");
    violations.check(
        unhealthy == 0,
        format!("{unhealthy} of {health_probes} /healthz probes failed during chaos"),
    );
    violations.check(
        handle.shutdown().is_ok(),
        "chaos server did not shut down cleanly",
    );
    println!(
        "loadgen: chaos: {total_requests} requests, {injected} faults fired, \
         {absorbed_5xx} retried 5xx, {health_probes} health probes, \
         deadline probe {probe_seconds:.3}s"
    );

    let headline = format!(
        "  \"chaos\": {{\"requests\": {total_requests}, \"fault_rules\": {rule_count}, \
         \"faults_fired\": {injected}, \"retried_5xx\": {absorbed_5xx}, \
         \"terminal_failures\": {final_failures}, \"health_probes\": {health_probes}, \
         \"unhealthy_probes\": {unhealthy}, \"deadline_probe_seconds\": {probe_seconds:.6}, \
         \"deadline_probe_bound_seconds\": {probe_bound:.3}}},\n"
    );
    let scenario = ScenarioResult {
        name: "chaos",
        requests: total_requests,
        wall_seconds: started.elapsed().as_secs_f64(),
        latency: latency_summary(&samples),
        hit_latency: latency_summary(&hit_samples),
        miss_latency: latency_summary(&miss_samples),
        cache_hits: hit_samples.len(),
        expected_4xx: 0,
    };
    (scenario, headline)
}

fn spawn_server() -> ServerHandle {
    Server::spawn(ServerConfig {
        cache_capacity: CACHE_CAPACITY,
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("loadgen: cannot boot the server: {e}");
        std::process::exit(1);
    })
}

/// `loadgen chaos [--quick]`: run only the chaos harness and write
/// `BENCH_server_chaos.json`.  Any violated invariant exits non-zero.
fn run_chaos_mode(sizes: &Sizes, out: Option<String>) {
    println!("loadgen: chaos mode ({})", sizes.mode);
    let mut violations = Violations(Vec::new());
    let (scenario, chaos_json) = chaos(sizes, &mut violations);

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_server_chaos/v1\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", sizes.mode);
    let _ = writeln!(json, "  \"fault_plan\": \"{}\",", CHAOS_FAULT_PLAN);
    json.push_str(&chaos_json);
    json.push_str("  \"scenarios\": [\n");
    json.push_str(&scenario_json(&scenario));
    json.push_str("\n  ]\n}\n");

    let path = out.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::var_os("TREEMEM_SWEEP_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."))
            .join("BENCH_server_chaos.json")
    });
    if let Err(error) = std::fs::write(&path, &json) {
        eprintln!("loadgen: cannot write {}: {error}", path.display());
        std::process::exit(1);
    }
    println!("loadgen: wrote {}", path.display());

    if !violations.0.is_empty() {
        eprintln!("loadgen: {} violated invariant(s)", violations.0.len());
        std::process::exit(1);
    }
    println!("loadgen: all chaos invariants held");
}

/// A spawned `serve` process (coordinator or worker), killed on drop so a
/// violated invariant cannot leak orphan processes into CI.
struct ManagedProc {
    label: String,
    child: std::process::Child,
}

impl Drop for ManagedProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Locate the `serve` binary: `TREEMEM_SERVE_BIN` when set, otherwise next
/// to the running `loadgen` (both are workspace bins, so one
/// `cargo build --release` puts them side by side).
fn serve_binary() -> std::path::PathBuf {
    let path = std::env::var_os("TREEMEM_SERVE_BIN")
        .map(std::path::PathBuf::from)
        .or_else(|| {
            std::env::current_exe()
                .ok()
                .and_then(|exe| Some(exe.parent()?.join("serve")))
        });
    match path {
        Some(path) if path.is_file() => path,
        Some(path) => {
            eprintln!(
                "loadgen: serve binary not found at {} (build it, or set TREEMEM_SERVE_BIN)",
                path.display()
            );
            std::process::exit(1);
        }
        None => {
            eprintln!("loadgen: cannot locate the serve binary; set TREEMEM_SERVE_BIN");
            std::process::exit(1);
        }
    }
}

/// Boot a coordinator on an ephemeral loopback port and parse the bound
/// address from its `serving on http://…` banner.
fn spawn_coordinator(bin: &std::path::Path) -> (ManagedProc, SocketAddr) {
    use std::io::BufRead as _;
    // Contribution frames scale with factor nnz: at 10⁶ nodes a single
    // frame runs to ~100 MB of hex floats, far past the interactive-scale
    // default body cap, so the coordinator gets a 1 GiB ceiling.
    let mut child = std::process::Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--max-body-bytes",
            "1073741824",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("loadgen: cannot spawn coordinator: {e}");
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                eprintln!("loadgen: coordinator exited before printing its address");
                std::process::exit(1);
            }
            Ok(_) => {
                if let Some(rest) = line.split("http://").nth(1) {
                    let text = rest.split_whitespace().next().unwrap_or("");
                    match text.parse::<SocketAddr>() {
                        Ok(addr) => break addr,
                        Err(_) => {
                            eprintln!("loadgen: unparsable coordinator address '{text}'");
                            std::process::exit(1);
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("loadgen: cannot read coordinator stdout: {e}");
                std::process::exit(1);
            }
        }
    };
    // Drain any further output so the coordinator can never block on a full
    // pipe.
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut reader, &mut std::io::sink());
    });
    (
        ManagedProc {
            label: "coordinator".to_string(),
            child,
        },
        addr,
    )
}

/// Spawn one `serve --role worker` process; `fault_plan` arms
/// `TREEMEM_FAULT_PLAN` in the child (the chaos victim).
fn spawn_worker(
    bin: &std::path::Path,
    addr: SocketAddr,
    worker_id: &str,
    fault_plan: Option<&str>,
) -> ManagedProc {
    let mut command = std::process::Command::new(bin);
    command
        .args([
            "--role",
            "worker",
            "--coordinator",
            &addr.to_string(),
            "--worker-id",
            worker_id,
        ])
        .stdout(std::process::Stdio::null());
    if let Some(plan) = fault_plan {
        command.env("TREEMEM_FAULT_PLAN", plan);
    }
    let child = command.spawn().unwrap_or_else(|e| {
        eprintln!("loadgen: cannot spawn worker {worker_id}: {e}");
        std::process::exit(1);
    });
    ManagedProc {
        label: worker_id.to_string(),
        child,
    }
}

/// The deterministic identity of one seeded `/solve` answer: the factor's
/// nonzero count and the residual's exact bits (`{:e}` round-trips `f64`
/// through the parser, so parsed equality is bit equality).
fn solve_identity(addr: SocketAddr, hash: &str, violations: &mut Violations) -> Option<(u64, u64)> {
    let body = format!("{{\"config_hash\": \"{hash}\", \"count\": 2, \"seed\": 11}}");
    let (_, response) = timed_post(addr, "/solve", &body, violations);
    let json = Json::parse(&response.body).ok()?;
    let nnz = json.get("factor_nnz").and_then(Json::as_u64)?;
    let residual = json.get("max_residual").and_then(Json::as_f64)?;
    violations.check(
        residual.is_finite() && residual < 1e-6,
        format!("solve residual {residual:e} above 1e-6"),
    );
    Some((nnz, residual.to_bits()))
}

/// One distributed `/report` against the coordinator: returns the wall
/// time, the config hash, and the `distributed` section of the report.
fn distributed_report(
    addr: SocketAddr,
    config: &str,
    deadline_ms: u64,
    violations: &mut Violations,
) -> (f64, Option<String>, Option<Json>) {
    // A body-level deadline below the client read timeout: a wedged cluster
    // surfaces as a 504 violation instead of a transport error.  The caller
    // sizes the deadline to the run (the full 10⁶-node order serializes
    // coordinator and workers on small hosts, so interactive-scale budgets
    // do not apply).
    let body = format!("{{\"deadline_ms\": {deadline_ms}, {}", &config[1..]);
    let read_timeout = std::time::Duration::from_millis(deadline_ms + 30_000);
    let started = Instant::now();
    let response =
        client::post_with_timeout(addr, "/report", &body, read_timeout).unwrap_or_else(|e| {
            eprintln!("loadgen: distributed report transport failure: {e}");
            std::process::exit(1);
        });
    let seconds = started.elapsed().as_secs_f64();
    violations.check(
        response.status == 200,
        format!(
            "distributed /report answered {} ({})",
            response.status,
            response.body.trim()
        ),
    );
    let hash = response.header("x-config-hash").map(str::to_string);
    let section = Json::parse(&response.body)
        .ok()
        .and_then(|json| json.get("distributed").cloned());
    (seconds, hash, section)
}

/// Poll `GET /internal/job/{id}` until at least one task has been claimed
/// (the chaos victim is the only live worker, so the claim is its lease).
fn wait_for_claim(addr: SocketAddr, job: u64, deadline_ms: u64, violations: &mut Violations) {
    let deadline = Instant::now() + std::time::Duration::from_millis(deadline_ms);
    loop {
        if let Ok(response) = client::get(addr, &format!("/internal/job/{job}")) {
            if response.status == 200 {
                let claimed = Json::parse(&response.body)
                    .ok()
                    .and_then(|json| json.get("claimed").and_then(Json::as_u64))
                    .unwrap_or(0);
                if claimed >= 1 {
                    return;
                }
            }
        }
        if Instant::now() >= deadline {
            violations.check(
                false,
                format!("job {job} saw no claim within {deadline_ms}ms"),
            );
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

fn distributed_gate(
    label: &str,
    section: Option<&Json>,
    identity: Option<(u64, u64)>,
    reference: (u64, u64),
    violations: &mut Violations,
) {
    let Some(section) = section else {
        violations.check(
            false,
            format!("{label} report carries no distributed section"),
        );
        return;
    };
    violations.check(
        section.get("workers").and_then(Json::as_u64).unwrap_or(0) >= 2,
        format!("{label} run used fewer than 2 workers"),
    );
    match identity {
        Some(identity) => violations.check(
            identity == reference,
            format!(
                "{label} merged factor diverged from the single-process reference \
                 (nnz {} vs {}, residual bits {:#x} vs {:#x})",
                identity.0, reference.0, identity.1, reference.1
            ),
        ),
        None => violations.check(false, format!("{label} solve answer was unparsable")),
    }
}

/// `loadgen distributed [--quick]`: the multi-process scenario described in
/// the module docs.  Writes `BENCH_distributed.json`; any violated
/// invariant exits non-zero.
fn run_distributed_mode(sizes: &Sizes, out: Option<String>) {
    let nodes = if sizes.mode == "full" {
        1_000_000
    } else {
        100_000
    };
    let tasks = 8usize;
    // Every timing knob scales with the order: on a small host the full
    // 10⁶-node run serializes coordinator and both workers onto a couple of
    // cores, so per-subtree wall time — which every lease must comfortably
    // exceed, or healthy contributions go stale and the job livelocks on
    // requeues — grows far past the quick-mode values.
    // The dominant term in a worker's *first* lease is planning, not
    // factoring: each worker process plans the configuration once, after
    // its first claim (the task frame carries the config, and the worker's
    // plan cache is empty until then).  At 10⁶ nodes nested-dissection
    // planning alone runs ~400 s per process on a small host, so the clean
    // lease must sit far above it or healthy first tasks expire.
    let (deadline_ms, clean_lease_ms, chaos_lease_ms) = if sizes.mode == "full" {
        (2_400_000, 1_500_000, 600_000)
    } else {
        (110_000, 30_000, 10_000)
    };
    println!(
        "loadgen: distributed mode ({}, {nodes} nodes, {tasks} tasks, 2 workers)",
        sizes.mode
    );
    let mut violations = Violations(Vec::new());

    let base = EngineConfig::generated(ProblemKind::Grid2d, nodes, 42)
        .with_ordering(OrderingMethod::NestedDissection)
        .with_numeric(true);

    // Single-process ground truth: factor the same configuration in-process
    // and record the seeded-solve identity every distributed run must match.
    let reference_server = spawn_server();
    let started = Instant::now();
    // The reference factorization is subject to the same order-scaled wall
    // time as the distributed passes, so it shares their read timeout
    // rather than the interactive 120 s default.
    let response = client::post_with_timeout(
        reference_server.addr(),
        "/report",
        &base.to_json(),
        std::time::Duration::from_millis(deadline_ms + 30_000),
    )
    .unwrap_or_else(|e| {
        eprintln!("loadgen: reference report transport failure: {e}");
        std::process::exit(1);
    });
    let reference_seconds = started.elapsed().as_secs_f64();
    violations.check(
        response.status == 200,
        format!(
            "/report answered {} ({})",
            response.status,
            response.body.trim()
        ),
    );
    let reference = response
        .header("x-config-hash")
        .map(str::to_string)
        .and_then(|hash| solve_identity(reference_server.addr(), &hash, &mut violations));
    let Some(reference) = reference else {
        violations.check(false, "single-process reference run failed");
        eprintln!("loadgen: cannot establish the reference factor; aborting");
        std::process::exit(1);
    };
    violations.check(
        reference_server.shutdown().is_ok(),
        "reference server did not shut down cleanly",
    );
    println!(
        "loadgen: reference factor in {reference_seconds:.3}s ({} nnz)",
        reference.0
    );

    let bin = serve_binary();
    let (coordinator, addr) = spawn_coordinator(&bin);
    let workers = vec![
        spawn_worker(&bin, addr, "w0", None),
        spawn_worker(&bin, addr, "w1", None),
    ];

    // Clean pass: both workers alive, a lease no healthy worker can miss.
    let clean_config = base
        .clone()
        .with_distributed(
            engine::DistributedConfig::with_tasks(tasks).with_lease_ms(clean_lease_ms),
        )
        .to_json();
    let (clean_seconds, clean_hash, clean_section) =
        distributed_report(addr, &clean_config, deadline_ms, &mut violations);
    let clean_identity = clean_hash
        .as_deref()
        .and_then(|hash| solve_identity(addr, hash, &mut violations));
    distributed_gate(
        "clean",
        clean_section.as_ref(),
        clean_identity,
        reference,
        &mut violations,
    );
    for (field, expected) in [("lease_expiries", 0), ("tasks_requeued", 0)] {
        violations.check(
            clean_section
                .as_ref()
                .and_then(|s| s.get(field))
                .and_then(Json::as_u64)
                == Some(expected),
            format!("clean run has nonzero {field}"),
        );
    }
    println!(
        "loadgen: clean distributed report in {clean_seconds:.3}s \
         ({:.2}x the single-process reference)",
        clean_seconds / reference_seconds.max(1e-9)
    );

    // Chaos pass: retire the healthy workers, hand the job to a victim that
    // stalls forever on its first claim, SIGKILL it while it holds the
    // lease, then let fresh workers finish the job via lease re-issue.
    for worker in workers {
        println!("loadgen: retiring healthy worker {}", worker.label);
        drop(worker);
    }
    let victim_plan = "sleep:600000@parexec:task";
    let victim = spawn_worker(&bin, addr, "w-victim", Some(victim_plan));
    let chaos_config = base
        .with_distributed(
            engine::DistributedConfig::with_tasks(tasks).with_lease_ms(chaos_lease_ms),
        )
        .to_json();
    let chaos_handle = std::thread::spawn(move || {
        let mut violations = Violations(Vec::new());
        let result = distributed_report(addr, &chaos_config, deadline_ms, &mut violations);
        (result, violations.0)
    });
    // Jobs number from 1 per coordinator: the clean pass was job 1.  The
    // claim only lands after the coordinator re-plans the chaos config, so
    // the wait shares the report deadline.
    wait_for_claim(addr, 2, deadline_ms, &mut violations);
    println!("loadgen: victim claimed a lease; killing it mid-job");
    drop(victim);
    let replacements = vec![
        spawn_worker(&bin, addr, "w2", None),
        spawn_worker(&bin, addr, "w3", None),
    ];
    let ((chaos_seconds, chaos_hash, chaos_section), chaos_violations) =
        chaos_handle.join().expect("chaos report thread");
    violations.0.extend(chaos_violations);
    let chaos_identity = chaos_hash
        .as_deref()
        .and_then(|hash| solve_identity(addr, hash, &mut violations));
    distributed_gate(
        "chaos",
        chaos_section.as_ref(),
        chaos_identity,
        reference,
        &mut violations,
    );
    for field in ["lease_expiries", "tasks_requeued"] {
        violations.check(
            chaos_section
                .as_ref()
                .and_then(|s| s.get(field))
                .and_then(Json::as_u64)
                .unwrap_or(0)
                >= 1,
            format!("chaos run recorded no {field} despite the killed worker"),
        );
    }
    println!("loadgen: chaos distributed report in {chaos_seconds:.3}s after lease re-issue");

    // Cluster book-keeping: counters reconcile (zero orphaned leases) and
    // the only injected fault produced no server-side 5xx.
    let stats_body = client::get(addr, "/stats")
        .map(|response| response.body)
        .unwrap_or_else(|e| {
            eprintln!("loadgen: coordinator /stats failed: {e}");
            std::process::exit(1);
        });
    let stats = Json::parse(&stats_body).unwrap_or(Json::Null);
    let cluster = |field: &str| {
        stats
            .get("cluster")
            .and_then(|c| c.get(field))
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX)
    };
    violations.check(
        cluster("tasks_claimed") == cluster("tasks_completed") + cluster("lease_expiries"),
        format!(
            "orphaned leases: {} claimed vs {} completed + {} expired",
            cluster("tasks_claimed"),
            cluster("tasks_completed"),
            cluster("lease_expiries")
        ),
    );
    violations.check(
        cluster("jobs_completed") == cluster("jobs_started"),
        "a job is still live on the coordinator",
    );
    violations.check(
        stats
            .get("responses")
            .and_then(|r| r.get("status_5xx"))
            .and_then(Json::as_u64)
            == Some(0),
        "coordinator answered a non-injected 5xx",
    );
    drop(replacements);
    drop(coordinator);

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_distributed/v1\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", sizes.mode);
    let _ = writeln!(
        json,
        "  \"corpus_nodes\": {nodes},\n  \"tasks\": {tasks},\n  \"worker_processes\": 2,"
    );
    let _ = writeln!(
        json,
        "  \"reference\": {{\"report_seconds\": {reference_seconds:.6}, \
         \"factor_nnz\": {}, \"residual_bits\": \"{:#018x}\"}},",
        reference.0, reference.1
    );
    // Re-render the load-bearing counters of each run's distributed
    // section (the parser keeps no serializer around).
    let section_json = |section: &Option<Json>| {
        let Some(section) = section else {
            return "null".to_string();
        };
        let field = |name: &str| section.get(name).and_then(Json::as_f64).unwrap_or(f64::NAN);
        format!(
            "{{\"workers\": {}, \"subtree_count\": {}, \"lease_expiries\": {}, \
             \"tasks_requeued\": {}, \"contribution_bytes\": {}, \
             \"wall_seconds\": {:.6}, \"merge_seconds\": {:.6}}}",
            field("workers"),
            field("subtree_count"),
            field("lease_expiries"),
            field("tasks_requeued"),
            field("contribution_bytes"),
            field("wall_seconds"),
            field("merge_seconds"),
        )
    };
    let _ = writeln!(
        json,
        "  \"clean\": {{\"report_seconds\": {clean_seconds:.6}, \"bit_identical\": {}, \
         \"distributed\": {}}},",
        clean_identity == Some(reference),
        section_json(&clean_section)
    );
    let _ = writeln!(
        json,
        "  \"chaos\": {{\"report_seconds\": {chaos_seconds:.6}, \"bit_identical\": {}, \
         \"fault_plan\": \"{victim_plan}\", \"distributed\": {}}},",
        chaos_identity == Some(reference),
        section_json(&chaos_section)
    );
    let _ = writeln!(json, "  \"coordinator_stats\": {}", stats_body.trim_end());
    json.push_str("}\n");

    let path = out.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::var_os("TREEMEM_SWEEP_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."))
            .join("BENCH_distributed.json")
    });
    if let Err(error) = std::fs::write(&path, &json) {
        eprintln!("loadgen: cannot write {}: {error}", path.display());
        std::process::exit(1);
    }
    println!("loadgen: wrote {}", path.display());

    if !violations.0.is_empty() {
        eprintln!("loadgen: {} violated invariant(s)", violations.0.len());
        std::process::exit(1);
    }
    println!("loadgen: all distributed invariants held");
}

/// `loadgen traces`: replay the {trace × policy × capacity} cache matrix in
/// plan-stub mode, run the end-to-end HTTP tenant pass, enforce the gates
/// (GDSF ≥ LRU on mixed, zero quota violations, clean accounting), and in
/// `--check` mode pin quick-run cells against the committed reference.
fn run_traces_mode(quick: bool, check: bool, write_reference: bool, out: Option<String>) {
    use bench::traces;

    if (check || write_reference) && !quick {
        eprintln!("loadgen: the reference pins quick-mode cells; add --quick");
        std::process::exit(2);
    }
    let mode = if quick { "quick" } else { "full" };
    println!("loadgen: replaying cache trace matrix ({mode} mode)");
    let mut violations = Violations(Vec::new());

    let matrix = traces::run_matrix(quick);
    for cell in &matrix {
        println!(
            "loadgen:   {:<8} {:<8} {:>5.2}% capacity -> hit rate {:>6.2}% \
             ({} evictions, {} uncacheable)",
            cell.trace,
            cell.policy,
            cell.fraction * 100.0,
            cell.hit_rate() * 100.0,
            cell.evictions,
            cell.uncacheable,
        );
    }
    let deep = if quick {
        Vec::new()
    } else {
        println!("loadgen: deep section (mixed trace at 200k requests per policy)");
        traces::run_deep()
    };
    let gate_violations = traces::check_gates(&matrix, &deep);
    for violation in &gate_violations {
        violations.check(false, violation);
    }

    println!("loadgen: end-to-end HTTP pass (tenants acme + zeta over X-Tenant)");
    let http = traces::run_http_pass(quick);
    for violation in &http.violations {
        violations.check(false, violation);
    }
    println!(
        "loadgen: HTTP pass sent {} requests, zeta scored {} hits under acme's flood",
        http.requests, http.zeta_hits
    );

    if write_reference {
        let path = traces::reference_path();
        if let Err(error) = std::fs::write(&path, traces::reference_json(&matrix)) {
            eprintln!("loadgen: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
        println!("loadgen: wrote reference {}", path.display());
    }
    if check {
        let path = traces::reference_path();
        match std::fs::read_to_string(&path) {
            Ok(reference) => {
                for mismatch in traces::check_reference(&matrix, &reference) {
                    violations.check(false, &mismatch);
                }
                println!(
                    "loadgen: reference identity checked against {}",
                    path.display()
                );
            }
            Err(error) => {
                violations.check(false, format!("cannot read {}: {error}", path.display()));
            }
        }
    }

    let json = traces::bench_json(mode, &matrix, &deep, &http, &gate_violations);
    let path = out.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::var_os("TREEMEM_SWEEP_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."))
            .join("BENCH_cache.json")
    });
    if let Err(error) = std::fs::write(&path, &json) {
        eprintln!("loadgen: cannot write {}: {error}", path.display());
        std::process::exit(1);
    }
    println!("loadgen: wrote {}", path.display());

    if !violations.0.is_empty() {
        eprintln!("loadgen: {} violated invariant(s)", violations.0.len());
        std::process::exit(1);
    }
    println!("loadgen: all cache-trace invariants held");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes = &FULL;
    let mut out: Option<String> = None;
    let mut chaos_mode = false;
    let mut distributed_mode = false;
    let mut traces_mode = false;
    let mut check_reference = false;
    let mut write_reference = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "chaos" => chaos_mode = true,
            "distributed" => distributed_mode = true,
            "traces" => traces_mode = true,
            "--check" => check_reference = true,
            "--write-reference" => write_reference = true,
            "--quick" => sizes = &QUICK,
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("loadgen: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "usage: loadgen [chaos|distributed|traces] [--quick] [--check] [--out PATH]   \
                     (unknown flag {other})"
                );
                std::process::exit(2);
            }
        }
    }

    if (check_reference || write_reference) && !traces_mode {
        eprintln!("loadgen: --check/--write-reference only apply to the traces mode");
        std::process::exit(2);
    }
    if traces_mode {
        run_traces_mode(
            std::ptr::eq(sizes, &QUICK),
            check_reference,
            write_reference,
            out,
        );
        return;
    }
    if distributed_mode {
        run_distributed_mode(sizes, out);
        return;
    }
    if chaos_mode {
        run_chaos_mode(sizes, out);
        return;
    }

    let handle = spawn_server();
    let addr = handle.addr();
    println!(
        "loadgen: serving on http://{addr} ({} mode, cache capacity {CACHE_CAPACITY})",
        sizes.mode
    );
    let mut violations = Violations(Vec::new());

    let (headline_scenario, headline_json) = cache_speedup(addr, sizes, &mut violations);
    let mut scenarios = vec![headline_scenario];
    scenarios.push(hot_set_skew(addr, sizes, &mut violations));
    scenarios.push(parallel_hot(addr, sizes, &mut violations));
    scenarios.push(mixed_kinds(addr, sizes, &mut violations));
    scenarios.push(cold_scan(addr, sizes, &mut violations));
    let (solve_scenario, solve_json) = solve_throughput(addr, sizes, &mut violations);
    scenarios.push(solve_scenario);
    scenarios.push(malformed(addr, &mut violations));

    // Final server-side view: cache hit rate, eviction counts, stage
    // latency percentiles.
    let stats_body = client::get(addr, "/stats")
        .map(|response| response.body)
        .unwrap_or_else(|e| {
            eprintln!("loadgen: /stats failed: {e}");
            std::process::exit(1);
        });
    let stats = Json::parse(&stats_body).unwrap_or(Json::Null);
    let cache_hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let evictions = stats
        .get("cache")
        .and_then(|c| c.get("evictions"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    violations.check(cache_hits > 0, "server finished with zero cache hits");
    violations.check(
        evictions > 0,
        "cold scan produced no cache evictions (capacity not exercised)",
    );
    violations.check(
        handle.shutdown().is_ok(),
        "server did not shut down cleanly",
    );
    println!("loadgen: clean shutdown, {cache_hits} cache hits, {evictions} evictions");

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_server/v1\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", sizes.mode);
    let _ = writeln!(json, "  \"cache_capacity\": {CACHE_CAPACITY},");
    json.push_str(&headline_json);
    json.push_str(&solve_json);
    json.push_str("  \"scenarios\": [\n");
    for (index, scenario) in scenarios.iter().enumerate() {
        json.push_str(&scenario_json(scenario));
        json.push_str(if index + 1 < scenarios.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    // Embed the final /stats document verbatim (it is already JSON).
    let _ = writeln!(json, "  \"server_stats\": {}", stats_body.trim_end());
    json.push_str("}\n");

    let path = out.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::var_os("TREEMEM_SWEEP_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."))
            .join("BENCH_server.json")
    });
    if let Err(error) = std::fs::write(&path, &json) {
        eprintln!("loadgen: cannot write {}: {error}", path.display());
        std::process::exit(1);
    }
    println!("loadgen: wrote {}", path.display());

    if !violations.0.is_empty() {
        eprintln!("loadgen: {} violated invariant(s)", violations.0.len());
        std::process::exit(1);
    }
    println!("loadgen: all invariants held");
}
