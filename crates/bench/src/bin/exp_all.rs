//! Run every experiment binary in sequence with the quick corpus.
//!
//! Convenience entry point: `cargo run -p bench --release --bin exp_all`.
//! Each experiment can also be run individually (and without `--quick`) —
//! see the crate documentation for the mapping to the paper's tables and
//! figures.

use std::process::Command;

fn main() {
    // Forward `--quick` to every experiment only when it was passed to
    // `exp_all` itself (or when no argument was given, to keep the default
    // invocation fast); `exp_all --full` runs the full corpus everywhere.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let experiments = [
        "exp_minmem_assembly",
        "exp_runtime",
        "exp_minio_heuristics",
        "exp_minio_traversals",
        "exp_minmem_random",
        "exp_theorem1",
        "exp_multifrontal",
        "exp_ablation",
        "exp_minio_sweep",
    ];
    let current = std::env::current_exe().expect("current executable path");
    let directory = current
        .parent()
        .expect("executable directory")
        .to_path_buf();
    let mut failures = Vec::new();
    for experiment in experiments {
        println!("\n================================================================");
        println!("== {experiment}");
        println!("================================================================");
        // Prefer the sibling binary (already built when this one was); fall
        // back to `cargo run` so `exp_all` also works from a fresh build.
        let path = directory.join(experiment);
        let mode = if full { "--full" } else { "--quick" };
        let status = if path.exists() {
            Command::new(&path).arg(mode).status()
        } else {
            Command::new("cargo")
                .args([
                    "run",
                    "--quiet",
                    "-p",
                    "bench",
                    "--release",
                    "--bin",
                    experiment,
                    "--",
                    mode,
                ])
                .status()
        };
        let status = status.unwrap_or_else(|err| panic!("failed to launch {experiment}: {err}"));
        if !status.success() {
            failures.push(experiment);
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed successfully.");
    } else {
        eprintln!("\nExperiments with failures: {failures:?}");
        std::process::exit(1);
    }
}
