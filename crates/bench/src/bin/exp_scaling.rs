//! Large-`p` scaling benchmark: times the MinMemory solvers and the
//! out-of-core simulator on the deterministic scaling corpus (chains,
//! harpoon towers, nested-dissection etrees, combs at 10⁴–10⁶ nodes) and
//! emits the machine-readable `BENCH_scaling.json`.
//!
//! Three kinds of cells are recorded:
//!
//! * `solver` — one MinMemory solver on one tree (`chain-100000/minmem`);
//! * `sim` — one simulated out-of-core run of the natural traversal on a
//!   comb, under LSNF, for both the incremental simulator and the retained
//!   naive one (`comb-100000/sim-incremental`); the `speedups` section pairs
//!   them up, which is where the incremental-vs-naive ratio required by the
//!   performance work is recorded;
//! * `sweep` — the scaling corpus pushed through the parallel sweep engine
//!   (reduced grid), exercising the same code path as `exp_minio_sweep`.
//!
//! Flags: `--quick` uses the reduced corpus (the CI smoke configuration);
//! `--check <reference.json>` additionally compares every cell against the
//! checked-in reference timings and exits non-zero if any cell regressed
//! more than [`REGRESSION_FACTOR`]× (cells below [`CHECK_FLOOR_SECONDS`] in
//! the reference are skipped as timer noise).  The JSON is written to the
//! current directory, or `TREEMEM_SWEEP_DIR` if set.

use std::fmt::Write as _;
use std::time::Instant;

use bench::{
    memory_sweep, run_sweep, run_with_big_stack, scaling_corpus_full, scaling_corpus_reduced,
    Corpus, SweepConfig,
};
use minio::{schedule_io_naive, schedule_io_with};
use perfprof::{speedup, time_runs, TimingSummary};
use treemem::postorder::natural_postorder;
use treemem::solver::SolverRegistry;

/// A cell regressing more than this factor against the reference fails the
/// `--check` gate (generous, to tolerate CI runner noise).
const REGRESSION_FACTOR: f64 = 3.0;
/// Reference cells faster than this are skipped by `--check`: at that scale
/// the comparison measures the timer, not the algorithm.
const CHECK_FLOOR_SECONDS: f64 = 0.002;
/// The naive simulator is O(p²); running it beyond this size measures
/// patience, not performance.
const NAIVE_SIM_NODE_LIMIT: usize = 150_000;

/// A fixed CPU-bound integer workload (independent of any code under test)
/// timed alongside the cells.  `--check` rescales the reference timings by
/// the ratio of the two calibration measurements, so the regression gate
/// compares algorithmic cost, not the speed of the machine that recorded
/// the reference.
fn calibration_seconds() -> f64 {
    let (_, timing) = time_runs(3, || {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for i in 0..50_000_000u64 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(acc)
    });
    timing.median_seconds
}

struct Cell {
    name: String,
    kind: &'static str,
    nodes: usize,
    timing: TimingSummary,
    /// Solver cells: the peak; sim cells: the I/O volume; sweep: cell count.
    value: i64,
}

struct Speedup {
    name: String,
    nodes: usize,
    naive_seconds: f64,
    incremental_seconds: f64,
    speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let exit_code = run_with_big_stack(move || run(quick, check_path));
    std::process::exit(exit_code);
}

fn run(quick: bool, check_path: Option<String>) -> i32 {
    let corpus = if quick {
        scaling_corpus_reduced()
    } else {
        scaling_corpus_full()
    };
    // Repeat cheap quick cells for a stable median; full-size cells run once.
    let runs = if quick { 5 } else { 1 };
    println!(
        "# scaling benchmark: {} trees ({}), {} run(s) per cell",
        corpus.len(),
        corpus.description,
        runs
    );

    let calibration = calibration_seconds();
    println!("calibration workload: {:.3} ms", calibration * 1e3);

    let mut cells: Vec<Cell> = Vec::new();
    let mut speedups: Vec<Speedup> = Vec::new();

    solver_cells(&corpus, runs, &mut cells);
    simulator_cells(&corpus, runs, &mut cells, &mut speedups);
    sweep_cell(&corpus, &mut cells);

    println!("\n{:<38} {:>12} {:>14}", "cell", "median", "value");
    for cell in &cells {
        println!(
            "{:<38} {:>9.3} ms {:>14}",
            cell.name,
            cell.timing.median_seconds * 1e3,
            cell.value
        );
    }
    println!("\nincremental vs naive simulator (LSNF on the natural traversal):");
    for s in &speedups {
        println!(
            "  {:<28} naive {:>9.3} ms  incremental {:>9.3} ms  speedup {:>6.1}x",
            s.name,
            s.naive_seconds * 1e3,
            s.incremental_seconds * 1e3,
            s.speedup
        );
    }

    let json = render_json(quick, calibration, &corpus, &cells, &speedups);
    let directory = std::env::var_os("TREEMEM_SWEEP_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = directory.join("BENCH_scaling.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nWrote {}", path.display()),
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            return 1;
        }
    }

    match check_path {
        None => 0,
        Some(reference) => check_against_reference(&reference, calibration, &cells),
    }
}

/// Time every registered solver (minus the exponential oracle) on every tree.
fn solver_cells(corpus: &Corpus, runs: usize, cells: &mut Vec<Cell>) {
    let registry = SolverRegistry::with_builtin();
    for entry in &corpus.trees {
        for solver in registry.iter().filter(|s| s.name() != "brute") {
            let (result, timing) = time_runs(runs, || solver.solve(&entry.tree));
            cells.push(Cell {
                name: format!("{}/{}", entry.name, solver.name()),
                kind: "solver",
                nodes: entry.nodes,
                timing,
                value: result.peak,
            });
        }
    }
}

/// Time the incremental simulator against the retained naive one on the comb
/// family, whose natural traversal produces one eviction deficit per spine
/// step once the budget bites.
fn simulator_cells(
    corpus: &Corpus,
    runs: usize,
    cells: &mut Vec<Cell>,
    speedups: &mut Vec<Speedup>,
) {
    let lsnf = minio::policy::paper::Lsnf;
    for entry in corpus.trees.iter().filter(|t| t.name.starts_with("comb-")) {
        let po = natural_postorder(&entry.tree);
        // The hardest feasible budget (max MemReq): the resident set stays a
        // handful of files while every spine step runs a deficit, which is
        // exactly the regime where the naive full-scan rebuild pays O(p) per
        // step and the incremental candidate set pays O(resident).
        let memory = memory_sweep(&entry.tree, po.peak, &[0.0])[0];
        let (incremental, inc_timing) = time_runs(runs, || {
            schedule_io_with(&entry.tree, &po.traversal, memory, &lsnf)
                .expect("budget is above max MemReq by construction")
        });
        cells.push(Cell {
            name: format!("{}/sim-incremental", entry.name),
            kind: "sim",
            nodes: entry.nodes,
            timing: inc_timing,
            value: incremental.io_volume,
        });
        if entry.nodes > NAIVE_SIM_NODE_LIMIT {
            continue;
        }
        let (naive, naive_timing) = time_runs(runs, || {
            schedule_io_naive(&entry.tree, &po.traversal, memory, &lsnf)
                .expect("budget is above max MemReq by construction")
        });
        assert_eq!(
            incremental.io_volume, naive.io_volume,
            "{}: incremental and naive simulators disagree",
            entry.name
        );
        cells.push(Cell {
            name: format!("{}/sim-naive", entry.name),
            kind: "sim",
            nodes: entry.nodes,
            timing: naive_timing,
            value: naive.io_volume,
        });
        speedups.push(Speedup {
            name: format!("{}/LSNF", entry.name),
            nodes: entry.nodes,
            naive_seconds: naive_timing.median_seconds,
            incremental_seconds: inc_timing.median_seconds,
            speedup: speedup(&naive_timing, &inc_timing),
        });
    }
}

/// Push the scaling corpus through the parallel sweep engine on a reduced
/// grid (exact solvers × LSNF/FirstFit at one budget), so the corpus is
/// exercised by the same machinery as `exp_minio_sweep`.
fn sweep_cell(corpus: &Corpus, cells: &mut Vec<Cell>) {
    // The sweep solves each tree once per solver; keep the grid to the two
    // asymptotically interesting solvers and two policies.
    let config = SweepConfig {
        memory_fractions: vec![0.5],
        solvers: vec!["postorder".into(), "liu".into()],
        policies: vec!["LSNF".into(), "FirstFit".into()],
        ..Default::default()
    };
    let start = Instant::now();
    let report = run_sweep(corpus, &config);
    let seconds = start.elapsed().as_secs_f64();
    let nodes = corpus.trees.iter().map(|t| t.nodes).sum();
    cells.push(Cell {
        name: "sweep/scaling-corpus".to_string(),
        kind: "sweep",
        nodes,
        timing: perfprof::summarize_seconds(&[seconds]),
        value: report.records.len() as i64,
    });
}

fn render_json(
    quick: bool,
    calibration: f64,
    corpus: &Corpus,
    cells: &[Cell],
    speedups: &[Speedup],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"scaling/v1\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"calibration_seconds\": {calibration:.6},");
    let _ = writeln!(out, "  \"trees\": {},", corpus.len());
    out.push_str("  \"cells\": [\n");
    for (index, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"nodes\": {}, \"runs\": {}, \
             \"seconds\": {:.6}, \"min_seconds\": {:.6}, \"max_seconds\": {:.6}, \
             \"value\": {}}}{}",
            cell.name,
            cell.kind,
            cell.nodes,
            cell.timing.runs,
            cell.timing.median_seconds,
            cell.timing.min_seconds,
            cell.timing.max_seconds,
            cell.value,
            if index + 1 < cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": [\n");
    for (index, s) in speedups.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"nodes\": {}, \"naive_seconds\": {:.6}, \
             \"incremental_seconds\": {:.6}, \"speedup\": {:.2}}}{}",
            s.name,
            s.nodes,
            s.naive_seconds,
            s.incremental_seconds,
            s.speedup,
            if index + 1 < speedups.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse `"name": "..."` / `"seconds": ...` pairs out of a reference
/// `BENCH_scaling.json` (one cell per line, as written by [`render_json`]).
fn parse_reference(contents: &str) -> Vec<(String, f64)> {
    let mut cells = Vec::new();
    for line in contents.lines() {
        let Some(name) = extract_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(seconds) = extract_f64(line, "\"seconds\": ") else {
            continue;
        };
        cells.push((name, seconds));
    }
    cells
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && c != 'e' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare the measured cells against the checked-in reference timings:
/// every cell present in both that is slower than `REGRESSION_FACTOR` times
/// the (machine-rescaled) reference fails the gate (reference cells below
/// the noise floor are skipped).
///
/// The reference was recorded on some other machine; its
/// `calibration_seconds` (same fixed workload as [`calibration_seconds`])
/// tells us how fast that machine was, and the reference timings are scaled
/// by `local calibration / reference calibration` before comparison, so a
/// slower CI runner does not read as a regression.
fn check_against_reference(path: &str, calibration: f64, cells: &[Cell]) -> i32 {
    let contents = match std::fs::read_to_string(path) {
        Ok(contents) => contents,
        Err(err) => {
            eprintln!("could not read reference timings {path}: {err}");
            return 1;
        }
    };
    let reference = parse_reference(&contents);
    if reference.is_empty() {
        eprintln!("reference file {path} contains no cells");
        return 1;
    }
    let scale = match extract_f64(&contents, "\"calibration_seconds\": ") {
        Some(ref_calibration) if ref_calibration > 0.0 => calibration / ref_calibration,
        _ => {
            eprintln!("reference file {path} has no calibration; comparing unscaled");
            1.0
        }
    };
    println!(
        "\n## regression check against {path} (limit {REGRESSION_FACTOR}x, machine scale {scale:.2})"
    );
    let mut compared = 0usize;
    let mut failures = 0usize;
    for cell in cells {
        let Some((_, raw_ref)) = reference.iter().find(|(name, _)| *name == cell.name) else {
            continue;
        };
        if *raw_ref < CHECK_FLOOR_SECONDS {
            continue;
        }
        compared += 1;
        let ref_seconds = raw_ref * scale;
        let ratio = cell.timing.median_seconds / ref_seconds;
        let verdict = if ratio > REGRESSION_FACTOR {
            failures += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:<38} ref {:>9.3} ms  now {:>9.3} ms  ratio {:>5.2}  {}",
            cell.name,
            ref_seconds * 1e3,
            cell.timing.median_seconds * 1e3,
            ratio,
            verdict
        );
    }
    println!("compared {compared} cells, {failures} regression(s)");
    if compared == 0 {
        eprintln!("no reference cell was comparable; refusing to pass an empty gate");
        return 1;
    }
    if failures > 0 {
        1
    } else {
        0
    }
}
