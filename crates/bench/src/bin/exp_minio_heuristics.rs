//! Experiment E3 — Figure 7 of the paper.
//!
//! For every assembly tree, compute the MinMem traversal and run **every
//! registered eviction policy** (the paper's six heuristics plus the
//! cache-inspired policies) with main-memory sizes swept between the largest
//! single-node requirement and the traversal peak; compare the resulting I/O
//! volumes with a performance profile.  Also reports the distance to the
//! divisible-relaxation lower bound (an absolute-quality indicator the paper
//! lists as future work).

use bench::{
    default_corpus, quick_corpus, random_corpus, run_with_big_stack, write_report, ExperimentArgs,
    ReportFile,
};
use engine::prelude::*;
use perfprof::PerformanceProfile;

/// Memory sizes as fractions of the way from `max MemReq` to the traversal
/// peak (0.0 is the hardest feasible budget).
const MEMORY_FRACTIONS: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

fn main() {
    let args = ExperimentArgs::from_env();
    run_with_big_stack(move || run(args));
}

fn run(args: ExperimentArgs) {
    // As in the paper, the sweep runs on the assembly-tree corpus; the
    // randomly re-weighted variants are added because on many synthetic
    // assembly trees the optimal peak coincides with the largest single-node
    // requirement, in which case no budget in the sweep requires any I/O (the
    // profile would be a tie at zero).  See EXPERIMENTS.md.
    let assembly = if args.quick {
        quick_corpus()
    } else {
        default_corpus()
    };
    let mut corpus = random_corpus(&assembly, 1, args.seed);
    corpus.trees.extend(assembly.trees);
    let engine = Engine::new();
    let policies = engine.policies().names();
    println!(
        "# Experiment E3 (Figure 7): I/O volume of every registered policy on MinMem traversals"
    );
    println!(
        "# {} trees x {} memory sizes x {} policies\n",
        corpus.len(),
        MEMORY_FRACTIONS.len(),
        policies.len()
    );

    let policy_names: Vec<String> = policies.iter().map(|p| format!("MinMem + {p}")).collect();
    let mut costs: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let mut bound_gap_sum = vec![0.0f64; policies.len()];
    let mut cases_with_io = 0usize;
    let mut cases_without_io = 0usize;
    let mut rows = String::from("instance,memory,policy,io_volume,divisible_bound\n");

    for entry in &corpus.trees {
        // One prebuilt plan per tree: the MinMem traversal is solved once and
        // cached; every (memory, policy) cell below reuses it.
        let plan = engine
            .plan(&EngineConfig::prebuilt(entry.tree.clone()).with_solver("minmem"))
            .expect("corpus trees always plan");
        for fraction in MEMORY_FRACTIONS {
            let mut memory = 0;
            let mut bound = 0;
            let volumes: Vec<i64> = policies
                .iter()
                .map(|policy| {
                    let schedule = plan
                        .schedule_with(
                            &engine,
                            ScheduleSpec::default()
                                .policy(policy.as_str())
                                .memory(MemoryBudget::FractionOfPeak(fraction)),
                        )
                        .expect("memory is above max MemReq by construction");
                    memory = schedule.memory_budget();
                    bound = schedule.divisible_bound();
                    schedule.io_volume()
                })
                .collect();
            if volumes.iter().all(|&v| v == 0) {
                // The budget is already sufficient for an in-core execution of
                // this traversal; such cases carry no information about the
                // policies and are excluded from the profile (but counted).
                cases_without_io += 1;
                continue;
            }
            cases_with_io += 1;
            for (index, (policy, &volume)) in policies.iter().zip(&volumes).enumerate() {
                costs[index].push(volume as f64);
                bound_gap_sum[index] += volume as f64 / (bound.max(1)) as f64;
                rows.push_str(&format!(
                    "{},{},{},{},{}\n",
                    entry.name, memory, policy, volume, bound
                ));
            }
        }
    }

    println!(
        "Cases requiring I/O: {cases_with_io} (plus {cases_without_io} in-core cases excluded)"
    );
    if cases_with_io == 0 {
        println!("No case required I/O; nothing to profile.");
        return;
    }
    let names: Vec<&str> = policy_names.iter().map(String::as_str).collect();
    let profile = PerformanceProfile::from_costs(&names, &costs);
    println!("Figure 7 — performance profile of the I/O volume (MinMem traversals)");
    println!("{}", profile.to_ascii(5.0, 60));
    for (index, name) in names.iter().enumerate() {
        println!(
            "{name:22} best on {:5.1}% of the cases, avg ratio to divisible bound {:.3}",
            100.0 * profile.fraction_best(index),
            bound_gap_sum[index] / cases_with_io as f64
        );
    }

    let files = vec![
        ReportFile::new("figure7_io.csv", rows),
        ReportFile::new("figure7_profile.csv", profile.to_csv(5.0, 101)),
    ];
    match write_report("exp_minio_heuristics", &files) {
        Ok(paths) => println!(
            "\nWrote {} report file(s) under results/exp_minio_heuristics/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
