//! Experiment E2 — Figure 6 of the paper.
//!
//! Compare the running times of every registered MinMemory solver (natural
//! postorder, best postorder, Liu's exact algorithm, MinMem) on the
//! assembly-tree corpus and report the Dolan–Moré performance profile of
//! the times.

use bench::{
    default_corpus, measurement_registry, quick_corpus, run_with_big_stack, write_report,
    ExperimentArgs, MeasurementSet, ReportFile,
};
use perfprof::PerformanceProfile;

fn main() {
    let args = ExperimentArgs::from_env();
    run_with_big_stack(move || run(args));
}

fn run(args: ExperimentArgs) {
    let corpus = if args.quick {
        quick_corpus()
    } else {
        default_corpus()
    };
    println!("# Experiment E2 (Figure 6): running times of the registered MinMemory solvers");
    println!("# {} instances of {}\n", corpus.len(), corpus.description);

    // Solver names from the registry (identical for every tree).
    let solver_names: Vec<String> = measurement_registry().names();
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(corpus.len()); solver_names.len()];
    let header: Vec<String> = solver_names.iter().map(|s| format!("{s}_us")).collect();
    let mut rows = format!("instance,nodes,{}\n", header.join(","));
    for entry in &corpus.trees {
        let measurement = MeasurementSet::measure(&entry.tree);
        rows.push_str(&format!("{},{}", entry.name, entry.nodes));
        for (index, m) in measurement.measurements.iter().enumerate() {
            let micros = m.time.as_secs_f64() * 1e6;
            times[index].push(micros);
            rows.push_str(&format!(",{micros:.1}"));
        }
        rows.push('\n');
    }

    let name_refs: Vec<&str> = solver_names.iter().map(String::as_str).collect();
    let profile = PerformanceProfile::from_costs(&name_refs, &times);
    println!("Figure 6 — performance profile of the running times (lower τ is better)");
    println!("{}", profile.to_ascii(5.0, 60));
    for (index, name) in profile.method_names().iter().enumerate() {
        println!(
            "{name:10} fastest on {:5.1}% of the instances, within 2x on {:5.1}%",
            100.0 * profile.fraction_best(index),
            100.0 * profile.value_at(index, 2.0)
        );
    }

    println!();
    for (index, name) in solver_names.iter().enumerate() {
        let total: f64 = times[index].iter().sum::<f64>() / 1e3;
        println!(
            "Total time {name:10} {total:10.1} ms over {} trees",
            corpus.len()
        );
    }

    let files = vec![
        ReportFile::new("figure6_times.csv", rows),
        ReportFile::new("figure6_profile.csv", profile.to_csv(5.0, 101)),
    ];
    match write_report("exp_runtime", &files) {
        Ok(paths) => println!(
            "Wrote {} report file(s) under results/exp_runtime/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
