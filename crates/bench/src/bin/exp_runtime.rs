//! Experiment E2 — Figure 6 of the paper.
//!
//! Compare the running times of the three MinMemory algorithms (best
//! postorder, Liu's exact algorithm, MinMem) on the assembly-tree corpus and
//! report the Dolan–Moré performance profile of the times.

use bench::{default_corpus, quick_corpus, run_with_big_stack, write_report, ExperimentArgs, MinMemoryMeasurement, ReportFile};
use perfprof::PerformanceProfile;

fn main() {
    let args = ExperimentArgs::from_env();
    run_with_big_stack(move || run(args));
}

fn run(args: ExperimentArgs) {
    let corpus = if args.quick { quick_corpus() } else { default_corpus() };
    println!("# Experiment E2 (Figure 6): running times of PostOrder / Liu / MinMem");
    println!("# {} instances of {}\n", corpus.len(), corpus.description);

    let mut postorder_times = Vec::with_capacity(corpus.len());
    let mut liu_times = Vec::with_capacity(corpus.len());
    let mut minmem_times = Vec::with_capacity(corpus.len());
    let mut rows = String::from("instance,nodes,postorder_us,liu_us,minmem_us\n");
    for entry in &corpus.trees {
        let measurement = MinMemoryMeasurement::measure(&entry.tree);
        let po = measurement.postorder_time.as_secs_f64() * 1e6;
        let liu = measurement.liu_time.as_secs_f64() * 1e6;
        let mm = measurement.minmem_time.as_secs_f64() * 1e6;
        postorder_times.push(po);
        liu_times.push(liu);
        minmem_times.push(mm);
        rows.push_str(&format!("{},{},{:.1},{:.1},{:.1}\n", entry.name, entry.nodes, po, liu, mm));
    }

    let profile = PerformanceProfile::from_costs(
        &["MinMem", "PostOrder", "Liu"],
        &[minmem_times.clone(), postorder_times.clone(), liu_times.clone()],
    );
    println!("Figure 6 — performance profile of the running times (lower τ is better)");
    println!("{}", profile.to_ascii(5.0, 60));
    for (index, name) in profile.method_names().iter().enumerate() {
        println!(
            "{name:10} fastest on {:5.1}% of the instances, within 2x on {:5.1}%",
            100.0 * profile.fraction_best(index),
            100.0 * profile.value_at(index, 2.0)
        );
    }

    let total = |values: &[f64]| values.iter().sum::<f64>() / 1e3;
    println!(
        "\nTotal time: PostOrder {:.1} ms, Liu {:.1} ms, MinMem {:.1} ms over {} trees",
        total(&postorder_times),
        total(&liu_times),
        total(&minmem_times),
        corpus.len()
    );

    let files = vec![
        ReportFile::new("figure6_times.csv", rows),
        ReportFile::new("figure6_profile.csv", profile.to_csv(5.0, 101)),
    ];
    match write_report("exp_runtime", &files) {
        Ok(paths) => println!("Wrote {} report file(s) under results/exp_runtime/", paths.len()),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
