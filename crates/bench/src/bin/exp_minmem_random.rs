//! Experiment E5 — Table II and Figure 9 of the paper.
//!
//! Keep the structure of every assembly tree of the corpus but draw random
//! weights (execution files in `[1, N/500]`, input files in `[1, N]`, with
//! `N` the number of nodes), then compare the best postorder with the optimal
//! traversal.  On such general trees the postorder is much more frequently
//! sub-optimal than on real assembly trees.

use bench::{
    default_corpus, quick_corpus, random_corpus, run_with_big_stack, write_report, ExperimentArgs,
    MeasurementSet, ReportFile,
};
use perfprof::{ratio_statistics, PerformanceProfile};

/// Number of random re-weightings per tree structure (the paper generates
/// "more than 3200 trees" from 291 structures, i.e. roughly 11 per matrix;
/// the full corpus here uses 4 per structure to keep the running time
/// moderate).
const VARIANTS_PER_TREE: usize = 4;

fn main() {
    let args = ExperimentArgs::from_env();
    run_with_big_stack(move || run(args));
}

fn run(args: ExperimentArgs) {
    let base = if args.quick {
        quick_corpus()
    } else {
        default_corpus()
    };
    let corpus = random_corpus(
        &base,
        if args.quick { 2 } else { VARIANTS_PER_TREE },
        args.seed,
    );
    println!("# Experiment E5 (Table II / Figure 9): PostOrder vs optimal on random trees");
    println!("# {} randomly re-weighted trees\n", corpus.len());

    let mut postorder = Vec::with_capacity(corpus.len());
    let mut optimal = Vec::with_capacity(corpus.len());
    let mut rows = String::from("instance,nodes,postorder_peak,optimal_peak,ratio\n");
    for entry in &corpus.trees {
        let measurement = MeasurementSet::measure(&entry.tree);
        let postorder_peak = measurement.peak_of("postorder");
        let optimal_peak = measurement
            .exact_peak()
            .expect("an exact solver always runs");
        postorder.push(postorder_peak as f64);
        optimal.push(optimal_peak as f64);
        rows.push_str(&format!(
            "{},{},{},{},{:.6}\n",
            entry.name,
            entry.nodes,
            postorder_peak,
            optimal_peak,
            postorder_peak as f64 / optimal_peak as f64
        ));
    }

    let stats = ratio_statistics(&postorder, &optimal);
    println!("Table II — statistics on the memory cost of PostOrder (random trees)");
    println!("{}", stats.to_table("PostOrder", "opt"));

    let profile = PerformanceProfile::from_costs(&["Optimal", "PostOrder"], &[optimal, postorder]);
    println!("Figure 9 — performance profile (all random trees)");
    println!("{}", profile.to_ascii(2.0, 60));

    let files = vec![
        ReportFile::new("table2_instances.csv", rows),
        ReportFile::new("figure9_profile.csv", profile.to_csv(2.0, 101)),
        ReportFile::new(
            "table2_summary.txt",
            format!(
                "instances: {}\nnon-optimal fraction: {:.4}\nmax ratio: {:.4}\navg ratio: {:.4}\nstd dev: {:.4}\n",
                stats.instances,
                stats.fraction_suboptimal,
                stats.max_ratio,
                stats.mean_ratio,
                stats.stddev_ratio
            ),
        ),
    ];
    match write_report("exp_minmem_random", &files) {
        Ok(paths) => println!(
            "Wrote {} report file(s) under results/exp_minmem_random/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
