//! Experiment E4 — Figure 8 of the paper.
//!
//! Compare the out-of-core quality of the traversals produced by **every
//! registered MinMemory solver** (natural postorder, best postorder, Liu,
//! MinMem), all equipped with the First Fit eviction policy, over the same
//! memory sweep as Experiment E3 — one engine plan per tree, with the solver
//! traversals cached across the sweep.

use bench::{
    default_corpus, measurement_registry, memory_sweep, quick_corpus, random_corpus,
    run_with_big_stack, write_report, ExperimentArgs, ReportFile,
};
use engine::prelude::*;
use perfprof::PerformanceProfile;

const MEMORY_FRACTIONS: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

fn main() {
    let args = ExperimentArgs::from_env();
    run_with_big_stack(move || run(args));
}

fn run(args: ExperimentArgs) {
    // Assembly corpus plus its random re-weighting, for the same reason as in
    // Experiment E3 (many synthetic assembly trees never need I/O within the
    // sweep).
    let assembly = if args.quick {
        quick_corpus()
    } else {
        default_corpus()
    };
    let mut corpus = random_corpus(&assembly, 1, args.seed);
    corpus.trees.extend(assembly.trees);
    println!("# Experiment E4 (Figure 8): I/O volume per solver traversal with First Fit");
    println!(
        "# {} trees x {} memory sizes\n",
        corpus.len(),
        MEMORY_FRACTIONS.len()
    );

    let engine = Engine::new();
    // Solver names from the measurement registry (every registered solver
    // except the exponential brute-force oracle), as in Experiment E2.
    let solvers: Vec<String> = measurement_registry().names();
    let names: Vec<String> = solvers.iter().map(|s| format!("{s} + First Fit")).collect();
    let mut costs: Vec<Vec<f64>> = vec![Vec::new(); solvers.len()];
    let mut rows = String::from("instance,memory,traversal,io_volume\n");
    let mut cases_without_io = 0usize;

    for entry in &corpus.trees {
        let plan = engine
            .plan(&EngineConfig::prebuilt(entry.tree.clone()).with_policy("FirstFit"))
            .expect("corpus trees always plan");
        // Sweep memory relative to the *optimal* peak so all traversals face
        // the same budgets (the postorders may then be above their own peak,
        // where they simply need no I/O).
        let (optimal, _) = plan.solve(&engine, "minmem").expect("registered solver");
        for memory in memory_sweep(plan.tree(), optimal.peak, &MEMORY_FRACTIONS) {
            let volumes: Vec<i64> = solvers
                .iter()
                .map(|solver| {
                    plan.schedule_with(
                        &engine,
                        ScheduleSpec::default()
                            .solver(solver.as_str())
                            .memory(MemoryBudget::Absolute(memory)),
                    )
                    .expect("memory is above max MemReq by construction")
                    .io_volume()
                })
                .collect();
            if volumes.iter().all(|&v| v == 0) {
                cases_without_io += 1;
                continue;
            }
            for (index, (solver, &volume)) in solvers.iter().zip(&volumes).enumerate() {
                costs[index].push(volume as f64);
                rows.push_str(&format!(
                    "{},{},{},{}\n",
                    entry.name, memory, solver, volume
                ));
            }
        }
    }

    println!(
        "Cases requiring I/O: {} (plus {cases_without_io} in-core cases excluded)",
        costs[0].len()
    );
    if costs[0].is_empty() {
        println!("No case required I/O; nothing to profile.");
        return;
    }
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let profile = PerformanceProfile::from_costs(&name_refs, &costs);
    println!("Figure 8 — performance profile of the I/O volume per traversal (First Fit)");
    println!("{}", profile.to_ascii(5.0, 60));
    for (index, name) in name_refs.iter().enumerate() {
        let total: f64 = costs[index].iter().sum();
        println!(
            "{name:24} best on {:5.1}% of the cases, total I/O volume {:.0}",
            100.0 * profile.fraction_best(index),
            total
        );
    }

    let files = vec![
        ReportFile::new("figure8_io.csv", rows),
        ReportFile::new("figure8_profile.csv", profile.to_csv(5.0, 101)),
    ];
    match write_report("exp_minio_traversals", &files) {
        Ok(paths) => println!(
            "\nWrote {} report file(s) under results/exp_minio_traversals/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
