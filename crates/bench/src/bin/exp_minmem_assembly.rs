//! Experiment E1 — Table I and Figure 5 of the paper.
//!
//! For every assembly tree of the corpus, compare the memory requirement of
//! the best postorder traversal (`PostOrder`) with the optimal value
//! (computed by `MinMem`, cross-checked against Liu's algorithm).  Prints the
//! Table-I statistics and writes the Figure-5 performance profile (restricted
//! to the instances where the postorder is *not* optimal, as in the paper).

use bench::{
    default_corpus, quick_corpus, run_with_big_stack, write_report, ExperimentArgs, MeasurementSet,
    ReportFile,
};
use perfprof::{ratio_statistics, PerformanceProfile};

fn main() {
    let args = ExperimentArgs::from_env();
    run_with_big_stack(move || run(args));
}

fn run(args: ExperimentArgs) {
    let corpus = if args.quick {
        quick_corpus()
    } else {
        default_corpus()
    };
    println!(
        "# Experiment E1 (Table I / Figure 5): PostOrder vs optimal on {}",
        corpus.description
    );
    println!("# {} instances\n", corpus.len());

    let mut postorder = Vec::with_capacity(corpus.len());
    let mut optimal = Vec::with_capacity(corpus.len());
    let mut rows = String::from("instance,nodes,postorder_peak,optimal_peak,ratio\n");
    for entry in &corpus.trees {
        let measurement = MeasurementSet::measure(&entry.tree);
        let postorder_peak = measurement.peak_of("postorder");
        let optimal_peak = measurement
            .exact_peak()
            .expect("an exact solver always runs");
        postorder.push(postorder_peak as f64);
        optimal.push(optimal_peak as f64);
        rows.push_str(&format!(
            "{},{},{},{},{:.6}\n",
            entry.name,
            entry.nodes,
            postorder_peak,
            optimal_peak,
            postorder_peak as f64 / optimal_peak as f64
        ));
    }

    // Table I.
    let stats = ratio_statistics(&postorder, &optimal);
    println!("Table I — statistics on the memory cost of PostOrder (assembly trees)");
    println!("{}", stats.to_table("PostOrder", "opt"));

    // Figure 5: profile over the non-optimal instances only.
    let non_optimal: Vec<usize> = (0..postorder.len())
        .filter(|&i| postorder[i] > optimal[i] + 0.5)
        .collect();
    println!(
        "Non-optimal instances: {} / {}",
        non_optimal.len(),
        postorder.len()
    );
    let mut files = vec![ReportFile::new("table1_instances.csv", rows)];
    if !non_optimal.is_empty() {
        let po: Vec<f64> = non_optimal.iter().map(|&i| postorder[i]).collect();
        let opt: Vec<f64> = non_optimal.iter().map(|&i| optimal[i]).collect();
        let profile = PerformanceProfile::from_costs(&["Optimal", "PostOrder"], &[opt, po]);
        println!("\nFigure 5 — performance profile (non-optimal instances only)");
        println!("{}", profile.to_ascii(1.25, 60));
        files.push(ReportFile::new(
            "figure5_profile.csv",
            profile.to_csv(1.25, 101),
        ));
    } else {
        println!("\nFigure 5 skipped: PostOrder is optimal on every instance of this corpus.");
    }
    files.push(ReportFile::new(
        "table1_summary.txt",
        format!(
            "instances: {}\nnon-optimal fraction: {:.4}\nmax ratio: {:.4}\navg ratio: {:.4}\nstd dev: {:.4}\n",
            stats.instances,
            stats.fraction_suboptimal,
            stats.max_ratio,
            stats.mean_ratio,
            stats.stddev_ratio
        ),
    ));

    match write_report("exp_minmem_assembly", &files) {
        Ok(paths) => println!(
            "\nWrote {} report file(s) under results/exp_minmem_assembly/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
