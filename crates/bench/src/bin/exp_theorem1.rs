//! Experiment E6/E7 — Theorem 1 (harpoon towers) and Theorem 2 (2-Partition
//! gadget).
//!
//! Theorem 1 states that the best postorder can need arbitrarily more memory
//! than the optimal traversal.  This binary measures the ratio on nested
//! harpoon towers for growing nesting levels and branch counts, using the
//! exact algorithms, and prints the closed-form postorder value next to the
//! measured one.  With `--gadget` it also exercises the Theorem-2 reduction:
//! the I/O volume needed by the 2-Partition gadget is `S/2` exactly when the
//! embedded instance is solvable.

use bench::{run_with_big_stack, write_report, ReportFile};
use minio::{divisible_lower_bound, schedule_io, EvictionPolicy};
use treemem::gadgets::{harpoon_tower, harpoon_tower_postorder_peak, two_partition_gadget};
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::Traversal;

fn main() {
    run_with_big_stack(run);
}

fn run() {
    println!("# Experiment E6 (Theorem 1): postorder / optimal ratio on harpoon towers\n");
    println!(
        "{:>8} {:>7} {:>9} {:>14} {:>14} {:>14} {:>8}",
        "branches", "levels", "nodes", "postorder", "po (closed)", "optimal", "ratio"
    );
    let mut rows = String::from(
        "branches,levels,nodes,postorder_peak,postorder_closed_form,optimal_peak,ratio\n",
    );
    let eps = 1;
    let big = 10_000;
    let mut last_ratio_per_branch = Vec::new();
    for &branches in &[2usize, 4, 8] {
        let mut last_ratio = 0.0;
        for levels in 1..=5 {
            let tree = harpoon_tower(branches, big, eps, levels);
            if tree.len() > 60_000 {
                break;
            }
            let po = best_postorder(&tree);
            let opt = min_mem(&tree);
            let ratio = po.peak as f64 / opt.peak as f64;
            let closed = harpoon_tower_postorder_peak(branches, big, eps, levels);
            println!(
                "{branches:>8} {levels:>7} {:>9} {:>14} {:>14} {:>14} {ratio:>8.3}",
                tree.len(),
                po.peak,
                closed,
                opt.peak
            );
            rows.push_str(&format!(
                "{branches},{levels},{},{},{closed},{},{ratio:.4}\n",
                tree.len(),
                po.peak,
                opt.peak
            ));
            assert_eq!(
                po.peak, closed,
                "closed-form postorder peak must match the measurement"
            );
            last_ratio = ratio;
        }
        last_ratio_per_branch.push((branches, last_ratio));
        println!();
    }
    println!("The ratio grows with the number of levels for every branch count — the");
    println!("postorder can be made arbitrarily worse than the optimal traversal (Theorem 1).\n");

    // Theorem 2 gadget (always run: it is cheap).
    println!("# Experiment E7 (Theorem 2): 2-Partition gadget");
    let solvable = vec![3, 5, 2, 4, 6, 4]; // splits into 12 + 12
    let gadget = two_partition_gadget(&solvable);
    let mut order = vec![
        gadget.tree.root(),
        gadget.big_node,
        gadget.tree.children(gadget.big_node)[0],
    ];
    for &item in &gadget.item_nodes {
        order.push(item);
        order.push(gadget.tree.children(item)[0]);
    }
    let traversal = Traversal::new(order);
    let bound = divisible_lower_bound(&gadget.tree, &traversal, gadget.memory).unwrap();
    let best_k = schedule_io(
        &gadget.tree,
        &traversal,
        gadget.memory,
        EvictionPolicy::BestKCombination { k: solvable.len() },
    )
    .unwrap();
    let first_fit = schedule_io(
        &gadget.tree,
        &traversal,
        gadget.memory,
        EvictionPolicy::FirstFit,
    )
    .unwrap();
    println!(
        "  instance {:?} (S = {}), M = 2S = {}",
        solvable,
        gadget.io_bound * 2,
        gadget.memory
    );
    println!(
        "  divisible lower bound      : {bound} (= S/2 = {})",
        gadget.io_bound
    );
    println!(
        "  Best-K combination         : {} (finds the exact split)",
        best_k.io_volume
    );
    println!(
        "  First Fit                  : {} (may overshoot: the problem is NP-complete)",
        first_fit.io_volume
    );
    rows.push_str(&format!(
        "gadget,,,{},{},{},\n",
        first_fit.io_volume, best_k.io_volume, bound
    ));

    let files = vec![ReportFile::new("theorem1_ratios.csv", rows)];
    match write_report("exp_theorem1", &files) {
        Ok(paths) => println!(
            "\nWrote {} report file(s) under results/exp_theorem1/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
