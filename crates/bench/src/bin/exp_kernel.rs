//! Numeric-kernel benchmark: the cache-blocked `FrontKernel::Blocked`
//! against the scalar `FrontKernel::Reference` on dense fronts and on the
//! supernodal front corpus, emitting `BENCH_kernel.json`.
//!
//! Two kinds of cells are recorded:
//!
//! * `dense` — one full Cholesky factorization of an SPD front of a given
//!   size, per kernel (`dense-512/blocked`), reported in GFLOP/s;
//! * `corpus` — the *supernodal replay*: the nested-dissection-ordered,
//!   relaxed-amalgamated (allowance 16) assembly tree of a generated
//!   problem is reduced to its multiset of front shapes `(dim, pivots)`,
//!   and each distinct shape is timed as the partial factorization the
//!   multifrontal loop actually performs (`partial_cholesky(pivots)` on a
//!   `dim × dim` front), weighted by its multiplicity.  The flop-weighted
//!   aggregate over the corpus (2-D + 3-D grids) is the honest "kernel
//!   speedup on the workload" number — small fronts where blocking cannot
//!   pay are counted at exactly the rate the factorization visits them.
//!
//! The aggregate corpus speedup is gated: below [`SPEEDUP_FLOOR_FULL`]
//! (full corpus) or [`SPEEDUP_FLOOR_QUICK`] (`--quick`) the run exits
//! non-zero.  Before any timing, both kernels factor every dense size once
//! and the results are compared entry by entry, so a kernel that got fast
//! by getting wrong cannot pass.
//!
//! Flags: `--quick` shrinks the corpus for the CI smoke job; `--check
//! <reference.json>` compares cells against checked-in reference timings
//! (machine-rescaled via the calibration workload) and fails on a
//! [`REGRESSION_FACTOR`]× regression, exactly like `exp_scaling`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use multifrontal::{DenseMatrix, FrontKernel, DEFAULT_BLOCK};
use ordering::OrderingMethod;
use perfprof::time_runs;
use sparsemat::gen::ProblemKind;
use symbolic::{amalgamate, column_counts, elimination_tree};

/// A cell regressing more than this factor against the reference fails the
/// `--check` gate (generous, to tolerate CI runner noise).
const REGRESSION_FACTOR: f64 = 3.0;
/// Reference cells faster than this are skipped by `--check`.
const CHECK_FLOOR_SECONDS: f64 = 0.002;
/// The blocked kernel must beat the scalar reference by at least this
/// factor, flop-weighted over the full supernodal corpus (the PR's
/// acceptance bar).
const SPEEDUP_FLOOR_FULL: f64 = 3.0;
/// The reduced corpus has smaller top separators, so the bar is lower; the
/// full bar is enforced by the checked-in `BENCH_kernel.json`.
const SPEEDUP_FLOOR_QUICK: f64 = 1.5;
/// Relaxed-amalgamation allowance for the corpus assembly trees (the
/// paper's largest allowance; the one production-shaped fronts come from).
const AMALGAMATION: usize = 16;

struct Sizes {
    mode: &'static str,
    dense: &'static [usize],
    corpus_nodes: usize,
    floor: f64,
}

const FULL: Sizes = Sizes {
    mode: "full",
    dense: &[32, 64, 128, 256, 512, 1024, 2048],
    corpus_nodes: 100_000,
    floor: SPEEDUP_FLOOR_FULL,
};

const QUICK: Sizes = Sizes {
    mode: "quick",
    dense: &[32, 64, 128, 256, 512],
    corpus_nodes: 30_000,
    floor: SPEEDUP_FLOOR_QUICK,
};

/// Same fixed CPU-bound workload as `exp_scaling`: `--check` rescales the
/// reference timings by the ratio of the two calibration measurements.
fn calibration_seconds() -> f64 {
    let (_, timing) = time_runs(3, || {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for i in 0..50_000_000u64 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(acc)
    });
    timing.median_seconds
}

/// A deterministic dense SPD front (diagonally dominant, xorshift64* fill).
fn spd_front(n: usize, seed: u64) -> DenseMatrix {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut front = DenseMatrix::zeros(n);
    for j in 0..n {
        for i in j..n {
            let value = next();
            front.set(i, j, value);
            if i == j {
                front.set(i, i, value.abs() + n as f64);
            }
        }
    }
    front
}

/// Flops of a partial Cholesky eliminating `s` pivots of a `d × d` front.
fn partial_flops(d: f64, s: f64) -> f64 {
    (s * d * d - d * s * s + s * s * s / 3.0).max(1.0)
}

/// Best-of-rounds per-factorization seconds: repeats cheap shapes until the
/// measurement outweighs timer noise, timing only the kernel (clones are
/// outside the clock).
fn time_kernel(base: &DenseMatrix, kernel: FrontKernel, pivots: usize, flops: f64) -> f64 {
    let reps = ((20_000_000.0 / flops) as usize).clamp(1, 500);
    let rounds = if reps > 1 { 3 } else { 2 };
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let mut total = 0.0;
        for _ in 0..reps {
            let mut front = base.clone();
            let started = Instant::now();
            kernel
                .apply(std::hint::black_box(&mut front), pivots)
                .expect("SPD by construction");
            total += started.elapsed().as_secs_f64();
            std::hint::black_box(&front);
        }
        best = best.min(total / reps as f64);
    }
    best
}

struct Cell {
    name: String,
    kind: &'static str,
    n: usize,
    pivots: usize,
    seconds: f64,
    gflops: f64,
}

struct CorpusRow {
    name: String,
    nodes: usize,
    fronts: usize,
    shapes: usize,
    biggest_front: usize,
    flops: f64,
    reference_seconds: f64,
    blocked_seconds: f64,
}

impl CorpusRow {
    fn speedup(&self) -> f64 {
        self.reference_seconds / self.blocked_seconds.max(1e-12)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let sizes = if quick { &QUICK } else { &FULL };
    println!(
        "# kernel benchmark ({} mode): blocked (block {DEFAULT_BLOCK}) vs reference",
        sizes.mode
    );

    let calibration = calibration_seconds();
    println!("calibration workload: {:.3} ms", calibration * 1e3);

    parity_check(sizes);

    let mut cells: Vec<Cell> = Vec::new();
    dense_cells(sizes, &mut cells);
    let rows = corpus_cells(sizes, &mut cells);

    println!("\n{:<30} {:>12} {:>10}", "cell", "median", "GFLOP/s");
    for cell in &cells {
        println!(
            "{:<30} {:>9.3} ms {:>10.2}",
            cell.name,
            cell.seconds * 1e3,
            cell.gflops
        );
    }

    let total_flops: f64 = rows.iter().map(|r| r.flops).sum();
    let total_reference: f64 = rows.iter().map(|r| r.reference_seconds).sum();
    let total_blocked: f64 = rows.iter().map(|r| r.blocked_seconds).sum();
    let aggregate = total_reference / total_blocked.max(1e-12);
    println!("\nsupernodal corpus (amalgamation {AMALGAMATION}):");
    for row in &rows {
        println!(
            "  {:<18} fronts {:>6} (biggest {:>4}) {:.2e} flops: \
             ref {:>8.3}s  blocked {:>8.3}s  speedup {:.2}x",
            row.name,
            row.fronts,
            row.biggest_front,
            row.flops,
            row.reference_seconds,
            row.blocked_seconds,
            row.speedup()
        );
    }
    println!(
        "  aggregate: {total_flops:.2e} flops, ref {total_reference:.3}s, \
         blocked {total_blocked:.3}s, speedup {aggregate:.2}x (floor {:.1}x)",
        sizes.floor
    );

    let json = render_json(quick, calibration, &cells, &rows, aggregate, sizes.floor);
    let directory = std::env::var_os("TREEMEM_SWEEP_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = directory.join("BENCH_kernel.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nWrote {}", path.display()),
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            std::process::exit(1);
        }
    }

    if aggregate < sizes.floor {
        eprintln!(
            "kernel speedup {aggregate:.2}x is below the required {:.1}x floor",
            sizes.floor
        );
        std::process::exit(1);
    }

    if let Some(reference) = check_path {
        std::process::exit(check_against_reference(&reference, calibration, &cells));
    }
}

/// Factor every dense size with both kernels and compare the results: the
/// blocked kernel must agree with the reference to tight floating-point
/// tolerance before any of its timings count.
fn parity_check(sizes: &Sizes) {
    for &n in sizes.dense {
        let base = spd_front(n, n as u64);
        let mut reference = base.clone();
        let mut blocked = base.clone();
        FrontKernel::Reference.apply(&mut reference, n).unwrap();
        FrontKernel::default().apply(&mut blocked, n).unwrap();
        let mut worst = 0.0f64;
        for j in 0..n {
            for i in j..n {
                let a = reference.get(i, j);
                let b = blocked.get(i, j);
                worst = worst.max((a - b).abs() / a.abs().max(1.0));
            }
        }
        assert!(
            worst < 1e-12,
            "kernel parity violated at n={n}: relative error {worst:e}"
        );
    }
    println!("parity: blocked matches reference on all dense sizes");
}

fn dense_cells(sizes: &Sizes, cells: &mut Vec<Cell>) {
    for &n in sizes.dense {
        let base = spd_front(n, n as u64);
        let flops = partial_flops(n as f64, n as f64);
        for (label, kernel) in [
            ("reference", FrontKernel::Reference),
            ("blocked", FrontKernel::default()),
        ] {
            let seconds = time_kernel(&base, kernel, n, flops);
            cells.push(Cell {
                name: format!("dense-{n}/{label}"),
                kind: "dense",
                n,
                pivots: n,
                seconds,
                gflops: flops / seconds / 1e9,
            });
        }
    }
}

/// The supernodal replay described in the module docs: per problem kind,
/// collect the amalgamated front-shape multiset, time each distinct shape
/// once per kernel, and weight by multiplicity.
fn corpus_cells(sizes: &Sizes, cells: &mut Vec<Cell>) -> Vec<CorpusRow> {
    let mut rows = Vec::new();
    for kind in [ProblemKind::Grid2d, ProblemKind::Grid3d] {
        let name = format!("{kind:?}").to_lowercase();
        let pattern = kind.generate(sizes.corpus_nodes, 7);
        let permuted = OrderingMethod::NestedDissection
            .order(&pattern)
            .apply(&pattern);
        let etree = elimination_tree(&permuted);
        let counts = column_counts(&permuted, &etree);
        let assembly = amalgamate(&etree, &counts, AMALGAMATION);

        let mut shapes: HashMap<(usize, usize), usize> = HashMap::new();
        let mut fronts = 0usize;
        for node in 0..assembly.len() {
            let eta = assembly.eta[node];
            if eta == 0 {
                continue; // virtual root
            }
            let dim = assembly.mu[node] + eta - 1;
            *shapes.entry((dim, eta)).or_insert(0) += 1;
            fronts += 1;
        }
        let mut shapes: Vec<((usize, usize), usize)> = shapes.into_iter().collect();
        shapes.sort_unstable();

        let mut flops_total = 0.0f64;
        let mut reference_seconds = 0.0f64;
        let mut blocked_seconds = 0.0f64;
        for &((dim, pivots), count) in &shapes {
            let flops = partial_flops(dim as f64, pivots as f64);
            flops_total += flops * count as f64;
            let base = spd_front(dim, (dim * 31 + pivots) as u64);
            reference_seconds +=
                time_kernel(&base, FrontKernel::Reference, pivots, flops) * count as f64;
            blocked_seconds +=
                time_kernel(&base, FrontKernel::default(), pivots, flops) * count as f64;
        }
        let biggest_front = shapes.iter().map(|&((dim, _), _)| dim).max().unwrap_or(0);
        let row = CorpusRow {
            name: format!("{name}-{}", sizes.corpus_nodes),
            nodes: permuted.n(),
            fronts,
            shapes: shapes.len(),
            biggest_front,
            flops: flops_total,
            reference_seconds,
            blocked_seconds,
        };
        for (label, seconds) in [
            ("reference", reference_seconds),
            ("blocked", blocked_seconds),
        ] {
            cells.push(Cell {
                name: format!("corpus-{}/{label}", row.name),
                kind: "corpus",
                n: row.nodes,
                pivots: biggest_front,
                seconds,
                gflops: flops_total / seconds / 1e9,
            });
        }
        rows.push(row);
    }
    rows
}

fn render_json(
    quick: bool,
    calibration: f64,
    cells: &[Cell],
    rows: &[CorpusRow],
    aggregate: f64,
    floor: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"kernel/v1\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"calibration_seconds\": {calibration:.6},");
    let _ = writeln!(out, "  \"default_block\": {DEFAULT_BLOCK},");
    let _ = writeln!(out, "  \"amalgamation\": {AMALGAMATION},");
    out.push_str("  \"cells\": [\n");
    for (index, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"n\": {}, \"pivots\": {}, \
             \"seconds\": {:.6}, \"gflops\": {:.3}}}{}",
            cell.name,
            cell.kind,
            cell.n,
            cell.pivots,
            cell.seconds,
            cell.gflops,
            if index + 1 < cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"corpus\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"nodes\": {}, \"fronts\": {}, \"shapes\": {}, \
             \"biggest_front\": {}, \"flops\": {:.3e}, \"reference_seconds\": {:.6}, \
             \"blocked_seconds\": {:.6}, \"speedup\": {:.3}}}{}",
            row.name,
            row.nodes,
            row.fronts,
            row.shapes,
            row.biggest_front,
            row.flops,
            row.reference_seconds,
            row.blocked_seconds,
            row.speedup(),
            if index + 1 < rows.len() { "," } else { "" },
        );
    }
    let total_flops: f64 = rows.iter().map(|r| r.flops).sum();
    let total_reference: f64 = rows.iter().map(|r| r.reference_seconds).sum();
    let total_blocked: f64 = rows.iter().map(|r| r.blocked_seconds).sum();
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"aggregate\": {{\"flops\": {total_flops:.3e}, \
         \"reference_seconds\": {total_reference:.6}, \
         \"blocked_seconds\": {total_blocked:.6}, \"speedup\": {aggregate:.3}, \
         \"required_speedup\": {floor:.1}}}"
    );
    out.push_str("}\n");
    out
}

/// Parse `"name": "..."` / `"seconds": ...` pairs out of a reference
/// `BENCH_kernel.json` (one cell per line, as written by [`render_json`]).
fn parse_reference(contents: &str) -> Vec<(String, f64)> {
    let mut cells = Vec::new();
    for line in contents.lines() {
        let Some(name) = extract_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(seconds) = extract_f64(line, "\"seconds\": ") else {
            continue;
        };
        cells.push((name, seconds));
    }
    cells
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && c != '+' && c != 'e' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare measured cells against the checked-in reference, rescaled by the
/// calibration ratio; any cell more than [`REGRESSION_FACTOR`]× slower
/// fails (same contract as `exp_scaling`).
fn check_against_reference(path: &str, calibration: f64, cells: &[Cell]) -> i32 {
    let contents = match std::fs::read_to_string(path) {
        Ok(contents) => contents,
        Err(err) => {
            eprintln!("could not read reference timings {path}: {err}");
            return 1;
        }
    };
    let reference = parse_reference(&contents);
    if reference.is_empty() {
        eprintln!("reference file {path} contains no cells");
        return 1;
    }
    let scale = match extract_f64(&contents, "\"calibration_seconds\": ") {
        Some(ref_calibration) if ref_calibration > 0.0 => calibration / ref_calibration,
        _ => {
            eprintln!("reference file {path} has no calibration; comparing unscaled");
            1.0
        }
    };
    println!(
        "\n## regression check against {path} (limit {REGRESSION_FACTOR}x, machine scale {scale:.2})"
    );
    let mut compared = 0usize;
    let mut failures = 0usize;
    for cell in cells {
        let Some((_, raw_ref)) = reference.iter().find(|(name, _)| *name == cell.name) else {
            continue;
        };
        if *raw_ref < CHECK_FLOOR_SECONDS {
            continue;
        }
        compared += 1;
        let ref_seconds = raw_ref * scale;
        let ratio = cell.seconds / ref_seconds;
        let verdict = if ratio > REGRESSION_FACTOR {
            failures += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:<30} ref {:>9.3} ms  now {:>9.3} ms  ratio {:>5.2}  {}",
            cell.name,
            ref_seconds * 1e3,
            cell.seconds * 1e3,
            ratio,
            verdict
        );
    }
    println!("compared {compared} cells, {failures} regression(s)");
    if compared == 0 {
        eprintln!("no reference cell was comparable; refusing to pass an empty gate");
        return 1;
    }
    i32::from(failures > 0)
}
