//! Ablation study (not a figure of the paper, but a design-choice analysis
//! called out in DESIGN.md): how do the *ordering method* and the
//! *amalgamation allowance* — the two knobs of the assembly-tree pipeline —
//! affect the minimum memory, the postorder/optimal gap and the out-of-core
//! volume?
//!
//! The paper fixes MeTiS/amd orderings and sweeps the allowance only through
//! {1, 2, 4, 16}; this experiment makes both dimensions explicit so the
//! sensitivity of the headline results to the substrate choices is visible.

use bench::{run_with_big_stack, write_report, ExperimentArgs, ReportFile};
use engine::prelude::*;

fn main() {
    let args = ExperimentArgs::from_env();
    run_with_big_stack(move || run(args));
}

fn run(args: ExperimentArgs) {
    let size = if args.quick { 400 } else { 1600 };
    println!(
        "# Ablation: ordering method x amalgamation allowance (grid2d and random, n ~ {size})\n"
    );
    println!(
        "{:<9} {:<8} {:>4} {:>7} {:>12} {:>12} {:>7} {:>12}",
        "problem", "ordering", "amal", "nodes", "optimal", "postorder", "ratio", "io@memreq"
    );
    let mut rows = String::from(
        "problem,ordering,amalgamation,nodes,optimal_peak,postorder_peak,ratio,io_at_memreq\n",
    );

    let engine = Engine::new();
    for kind in [
        ProblemKind::Grid2d,
        ProblemKind::Random,
        ProblemKind::PowerLaw,
    ] {
        for method in OrderingMethod::ALL {
            // One symbolic analysis per (problem, ordering); the allowance
            // sweep derives sibling plans without re-running the ordering.
            let base = engine
                .plan(
                    &EngineConfig::generated(kind, size, args.seed)
                        .with_ordering(method)
                        .with_amalgamation(1)
                        .with_solver("minmem")
                        .with_policy("FirstFit")
                        .with_memory(MemoryBudget::FractionOfPeak(0.0)),
                )
                .expect("valid configuration");
            for allowance in [1usize, 2, 4, 16] {
                let derived;
                let plan = if allowance == 1 {
                    &base
                } else {
                    derived = base.reamalgamate(allowance).expect("matrix source");
                    &derived
                };
                let (po, _) = plan.solve(&engine, "postorder").expect("registered solver");
                // Out-of-core volume at the hardest feasible budget, with the
                // best traversal and the best heuristic of Figure 7.
                let schedule = plan.schedule(&engine).expect("fraction 0.0 is feasible");
                let (opt_peak, io) = (schedule.peak(), schedule.io_volume());
                let ratio = po.peak as f64 / opt_peak as f64;
                println!(
                    "{:<9} {:<8} {:>4} {:>7} {:>12} {:>12} {:>7.3} {:>12}",
                    kind.name(),
                    method.name(),
                    allowance,
                    plan.tree().len(),
                    opt_peak,
                    po.peak,
                    ratio,
                    io
                );
                rows.push_str(&format!(
                    "{},{},{},{},{},{},{:.4},{}\n",
                    kind.name(),
                    method.name(),
                    allowance,
                    plan.tree().len(),
                    opt_peak,
                    po.peak,
                    ratio,
                    io
                ));
            }
        }
        println!();
    }

    println!("Observations recorded in EXPERIMENTS.md: the allowance mainly trades tree size");
    println!("against front granularity (it barely changes the optimal peak), while the");
    println!("ordering changes the peak by an order of magnitude and decides whether any");
    println!("out-of-core I/O is needed at the hardest feasible budget.");

    let files = vec![ReportFile::new("ablation.csv", rows)];
    match write_report("exp_ablation", &files) {
        Ok(paths) => println!(
            "\nWrote {} report file(s) under results/exp_ablation/",
            paths.len()
        ),
        Err(err) => eprintln!("could not write report files: {err}"),
    }
}
