//! Corpus generation for the experiments.
//!
//! The paper uses 291 matrices of the UF Sparse Matrix Collection, each
//! ordered with MeTiS and `amd` and amalgamated with allowances 1, 2, 4 and
//! 16.  The synthetic corpus generated here follows the same recipe on the
//! problem generators of the `sparsemat` crate (see DESIGN.md for the
//! substitution rationale): every (problem kind, size) pair produces one
//! matrix, and every (ordering, amalgamation) combination of that matrix
//! produces one weighted assembly tree.
//!
//! Corpus construction goes through the `engine` facade: every (problem,
//! size, ordering) cell is one [`engine::EngineConfig`] planned on the
//! [`par_map`] pool, and the amalgamation sweep
//! derives sibling plans with [`engine::Plan::reamalgamate`], which reuses
//! the ordering, elimination tree and column counts instead of recomputing
//! them per allowance.

use engine::{Engine, EngineConfig};
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::PipelineConfig;
use treemem::gadgets::harpoon_tower;
use treemem::random::{comb, nested_dissection_etree, random_chain, reweight_paper};
use treemem::Tree;

use crate::parallel::{default_threads, par_map};

/// One weighted tree of the corpus, with its provenance.
#[derive(Debug, Clone)]
pub struct CorpusTree {
    /// Instance name (`problem-n-ordering-amalgamation`).
    pub name: String,
    /// The weighted assembly tree.
    pub tree: Tree,
    /// Number of nodes of the tree (cached for reports).
    pub nodes: usize,
}

/// A corpus of weighted trees.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Human-readable description (printed in reports).
    pub description: String,
    /// The trees.
    pub trees: Vec<CorpusTree>,
}

impl Corpus {
    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// Configuration used by the full experiments (a few thousand tree nodes per
/// instance, every generator, every ordering, the paper's amalgamation
/// allowances).
pub fn default_config() -> PipelineConfig {
    PipelineConfig {
        problems: ProblemKind::ALL.to_vec(),
        sizes: vec![400, 900, 2500],
        orderings: vec![
            OrderingMethod::MinimumDegree,
            OrderingMethod::NestedDissection,
            OrderingMethod::ReverseCuthillMcKee,
            OrderingMethod::Natural,
        ],
        amalgamations: vec![1, 2, 4, 16],
        seed: 0x5eed,
    }
}

/// Configuration used by `--quick` runs and the integration tests.
pub fn quick_config() -> PipelineConfig {
    PipelineConfig {
        problems: vec![
            ProblemKind::Grid2d,
            ProblemKind::Random,
            ProblemKind::PowerLaw,
        ],
        sizes: vec![225, 400],
        orderings: vec![
            OrderingMethod::MinimumDegree,
            OrderingMethod::NestedDissection,
        ],
        amalgamations: vec![1, 4],
        seed: 0x5eed,
    }
}

/// Generate the assembly-tree corpus for the given configuration, fanning
/// one engine plan per (problem, size, ordering) cell over the available
/// cores and deriving the amalgamation sweep from each plan.
///
/// The seeds and instance names follow the historical
/// `symbolic::assembly_instances` recipe, so the corpus is bit-identical to
/// the one the hand-stitched pipeline produced.
pub fn corpus_for(config: &PipelineConfig, description: &str) -> Corpus {
    let engine = Engine::new();
    let mut jobs: Vec<(ProblemKind, usize, OrderingMethod, u64)> = Vec::new();
    for (problem_index, &problem) in config.problems.iter().enumerate() {
        for (size_index, &size) in config.sizes.iter().enumerate() {
            let seed = config
                .seed
                .wrapping_add(problem_index as u64)
                .wrapping_mul(1_000_003)
                .wrapping_add(size_index as u64);
            for &ordering in &config.orderings {
                jobs.push((problem, size, ordering, seed));
            }
        }
    }
    let threads = default_threads(jobs.len());
    let per_job: Vec<Vec<CorpusTree>> =
        par_map(&jobs, threads, |_, &(problem, size, ordering, seed)| {
            let first = *config
                .amalgamations
                .first()
                .expect("at least one amalgamation allowance");
            let base = EngineConfig::generated(problem, size, seed)
                .with_ordering(ordering)
                .with_amalgamation(first);
            let plan = engine.plan(&base).expect("corpus configuration is valid");
            config
                .amalgamations
                .iter()
                .map(|&amalgamation| {
                    let derived;
                    let plan = if amalgamation == first {
                        &plan
                    } else {
                        derived = plan
                            .reamalgamate(amalgamation)
                            .expect("generated sources always re-amalgamate");
                        &derived
                    };
                    CorpusTree {
                        name: format!(
                            "{}-{}-{}-a{}",
                            problem.name(),
                            plan.matrix_n(),
                            ordering.name(),
                            amalgamation
                        ),
                        nodes: plan.tree().len(),
                        tree: plan.tree().clone(),
                    }
                })
                .collect()
        });
    Corpus {
        description: description.to_string(),
        trees: per_job.into_iter().flatten().collect(),
    }
}

/// The full corpus used by the experiments (unless `--quick` is passed).
pub fn default_corpus() -> Corpus {
    corpus_for(&default_config(), "assembly trees, full synthetic corpus")
}

/// A small corpus for quick runs and tests.
pub fn quick_corpus() -> Corpus {
    corpus_for(&quick_config(), "assembly trees, quick synthetic corpus")
}

/// The seed for the deterministic scaling corpus.
const SCALING_SEED: u64 = 0x5ca1e;

/// The large-`p` *scaling* corpus: deterministic families whose size is
/// controlled directly, used by `exp_scaling` and the CI regression gate
/// instead of the symbolic pipeline (whose output size is only indirectly
/// controllable and whose generation time would dominate at 10⁵–10⁶ nodes).
///
/// For every requested size `n` the corpus contains:
///
/// * `chain-{n}` — a random-weight chain ([`random_chain`]): maximal depth,
///   the stack-overflow and traversal-accumulation stress test;
/// * `harpoon-{n}` — the deepest binary [`harpoon_tower`] with at most `n`
///   nodes: the adversarial family of Theorem 1, where exact solvers beat
///   every postorder;
/// * `nd-etree-{n}` — a synthetic nested-dissection elimination tree
///   ([`nested_dissection_etree`]): the realistic assembly-tree shape at
///   scale;
/// * `comb-{n}` — a [`comb`] whose natural traversal accumulates one leaf
///   file per spine step: the out-of-core simulator stress test.
pub fn scaling_corpus(sizes: &[usize]) -> Corpus {
    let mut trees = Vec::with_capacity(4 * sizes.len());
    for (index, &n) in sizes.iter().enumerate() {
        assert!(n >= 16, "scaling sizes below 16 nodes are not meaningful");
        let seed = SCALING_SEED.wrapping_add(index as u64);
        trees.push(CorpusTree {
            name: format!("chain-{n}"),
            tree: random_chain(n, 100, seed),
            nodes: n,
        });
        // Deepest binary tower with at most n nodes: p = 1 + 6·(2^levels − 1).
        let levels = ((n - 1) / 6 + 1).ilog2() as usize;
        let tower = harpoon_tower(2, 1 << (levels + 2), 1, levels.max(1));
        trees.push(CorpusTree {
            nodes: tower.len(),
            name: format!("harpoon-{n}"),
            tree: tower,
        });
        trees.push(CorpusTree {
            name: format!("nd-etree-{n}"),
            tree: nested_dissection_etree(n, seed),
            nodes: n,
        });
        let spine = (n - 1) / 2;
        let comb_tree = comb(spine, 50, seed);
        trees.push(CorpusTree {
            nodes: comb_tree.len(),
            name: format!("comb-{n}"),
            tree: comb_tree,
        });
    }
    Corpus {
        description: format!("scaling corpus, sizes {sizes:?}"),
        trees,
    }
}

/// The full scaling corpus (10⁴, 10⁵ and 10⁶ nodes per family).
pub fn scaling_corpus_full() -> Corpus {
    scaling_corpus(&[10_000, 100_000, 1_000_000])
}

/// The reduced scaling corpus used by `--quick` runs and the CI smoke job.
/// 30 000 nodes keeps every timed cell above the regression gate's noise
/// floor while the whole smoke run stays in seconds.
pub fn scaling_corpus_reduced() -> Corpus {
    scaling_corpus(&[30_000])
}

/// The randomly re-weighted corpus of Section VI-E (Table II / Figure 9):
/// the same tree structures with node weights drawn in `[1, N/500]` and edge
/// weights in `[1, N]`.
pub fn random_corpus(base: &Corpus, variants_per_tree: usize, seed: u64) -> Corpus {
    let mut trees = Vec::with_capacity(base.trees.len() * variants_per_tree);
    for (index, entry) in base.trees.iter().enumerate() {
        for variant in 0..variants_per_tree {
            let tree_seed = seed
                .wrapping_add(index as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(variant as u64);
            trees.push(CorpusTree {
                name: format!("{}-rw{}", entry.name, variant),
                tree: reweight_paper(&entry.tree, tree_seed),
                nodes: entry.nodes,
            });
        }
    }
    Corpus {
        description: format!("{} (randomly re-weighted)", base.description),
        trees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_built_corpus_matches_the_legacy_recipe() {
        // The engine-planned corpus must be bit-identical (names and trees)
        // to the historical hand-stitched `assembly_instances` pipeline.
        let config = PipelineConfig::small();
        let instances = symbolic::assembly_instances(&config);
        let corpus = corpus_for(&config, "parity");
        assert_eq!(corpus.len(), instances.len());
        for (entry, instance) in corpus.trees.iter().zip(&instances) {
            assert_eq!(entry.name, instance.name);
            assert_eq!(entry.tree, instance.assembly.tree, "{}", entry.name);
        }
    }

    #[test]
    fn quick_corpus_is_nonempty_and_named_uniquely() {
        let corpus = quick_corpus();
        assert!(!corpus.is_empty());
        assert_eq!(corpus.len(), quick_config().instance_count());
        let mut names: Vec<&str> = corpus.trees.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn scaling_corpus_has_four_families_per_size() {
        let corpus = scaling_corpus(&[1000, 4000]);
        assert_eq!(corpus.len(), 8);
        for entry in &corpus.trees {
            assert_eq!(entry.nodes, entry.tree.len());
            assert!(entry.nodes <= 4000);
            // Families are sized to at least a quarter of the request (the
            // harpoon tower rounds down to a full number of levels).
            assert!(
                entry.nodes >= 250,
                "{} has {} nodes",
                entry.name,
                entry.nodes
            );
        }
        let names: Vec<&str> = corpus.trees.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"chain-1000"));
        assert!(names.contains(&"harpoon-4000"));
        assert!(names.contains(&"nd-etree-1000"));
        assert!(names.contains(&"comb-4000"));
        // Deterministic: same sizes, same corpus.
        let again = scaling_corpus(&[1000, 4000]);
        assert_eq!(again.trees[0].tree, corpus.trees[0].tree);
    }

    #[test]
    fn random_corpus_keeps_topologies_and_changes_weights() {
        let base = corpus_for(&quick_config(), "base");
        let random = random_corpus(&base, 2, 1);
        assert_eq!(random.len(), 2 * base.len());
        assert_eq!(random.trees[0].tree.parents(), base.trees[0].tree.parents());
        assert_ne!(random.trees[0].tree.files(), base.trees[0].tree.files());
    }
}
