//! # bench — experiment harness regenerating the paper's tables and figures
//!
//! Every binary in `src/bin/` regenerates one experimental artifact of the
//! paper (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! recorded results):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `exp_minmem_assembly`  | Table I and Figure 5 |
//! | `exp_runtime`          | Figure 6 |
//! | `exp_minio_heuristics` | Figure 7 |
//! | `exp_minio_traversals` | Figure 8 |
//! | `exp_minmem_random`    | Table II and Figure 9 |
//! | `exp_theorem1`         | Theorem 1 (harpoon towers) and Theorem 2 gadget |
//! | `exp_multifrontal`     | end-to-end multifrontal check (Section II-A) |
//! | `exp_minio_sweep`      | full policies × solvers sweep (`BENCH_minio_sweep.json`) |
//! | `exp_scaling`          | large-`p` scaling benchmark + CI regression gate (`BENCH_scaling.json`) |
//! | `exp_all`              | everything above, with the quick corpus |
//! | `factor_cli`           | one `engine::EngineConfig` end to end, `Report` as JSON |
//!
//! The binaries construct their pipelines through the `engine` facade
//! (prebuilt-tree plans for corpus sweeps, generated-matrix plans for the
//! end-to-end experiments); the library part of the crate holds the shared
//! infrastructure: corpus generation (planned through the engine, replacing
//! the paper's UF-collection data set), timing helpers, report writing, the
//! [`par_map`] re-export ([`parallel`], now living in `engine::parallel`)
//! and the parallel MinIO sweep engine ([`sweep`]) that crosses {corpus ×
//! memory budgets × registered solvers × registered eviction policies}.

pub mod corpus;
pub mod microbench;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod traces;

pub use corpus::{
    corpus_for, default_config, default_corpus, quick_config, quick_corpus, random_corpus,
    scaling_corpus, scaling_corpus_full, scaling_corpus_reduced, Corpus, CorpusTree,
};
pub use parallel::{default_threads, par_map};
pub use report::{write_report, ExperimentArgs, ReportFile};
pub use runner::{
    measurement_registry, memory_sweep, run_with_big_stack, time_it, MeasurementSet,
    SolverMeasurement,
};
pub use sweep::{run_sweep, run_sweep_with, SweepConfig, SweepRecord, SweepReport};
