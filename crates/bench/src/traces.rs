//! Trace-replay proof of the serving cache layer (`loadgen traces`).
//!
//! The harness replays seeded synthetic request traces against
//! [`engine::CacheCore`] directly — "plan-stub mode": each request is a
//! `get`-then-`insert` of a dummy value with a realistic byte footprint, so
//! millions of requests replay in seconds without planning anything — and
//! runs a smaller end-to-end HTTP pass against a spawned byte-budget server
//! with `X-Tenant` headers.
//!
//! ## Trace shapes
//!
//! * `zipf` — a zipfian hot set: 400 keys, α = 0.9, 1–32 KiB each.
//! * `scan` — a sequential flood of one-shot 128 KiB keys with a small
//!   (15%) hot set mixed in: the classic cache-pollution shape.
//! * `mixed` — the headline adversary: a zipfian hot set of *small* items
//!   (1–8 KiB) interleaved with a steady 25% stream of unique *large*
//!   (100–400 KiB) cold items, a ~100× size spread.  Size-aware policies
//!   (GDSF) must beat pure recency (LRU) here at every capacity.
//! * `tenants` — three tenants with different shapes and sizes sharing one
//!   cache under per-tenant quotas and a fair-share floor: `alpha` scan
//!   floods large one-shot items, `beta` re-reads a small hot set, `gamma`
//!   a medium one.  The gate is **zero quota violations**: at no sampled
//!   point may any tenant's resident bytes exceed its quota, and the byte
//!   accounting must audit clean after every cell.
//!
//! ## The matrix
//!
//! Every cell is {trace × policy × capacity}: capacities are fractions of
//! the trace's total unique bytes (1%, 3%, 10%), policies span both native
//! online implementations (LRU, GDSF, S3FIFO) and simulation heuristics
//! served through the [`minio::serving`] bridge (LruDist, LSNF).  Full
//! mode adds a deep section (the `mixed` trace at 200k requests per
//! policy) pushing the stub total past 10⁶ requests, and writes
//! `BENCH_cache.json`.  Quick mode is the CI smoke: the same matrix at
//! ~1/8 scale, byte-for-byte reproducible, checked against the committed
//! `crates/bench/data/cache_reference.json` (replay is fully
//! deterministic: seeded traces, logical-tick recency, no wall clock in
//! any eviction decision).

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;

use engine::cache::{CacheConfig, CacheCore, ServingPolicyRegistry};
use engine::json::Json;
use engine::prelude::*;
use prng::{Rng, StdRng};
use server::client;
use server::{CacheSettings, Server, ServerConfig};
use sparsemat::gen::ProblemKind;

/// Policies every matrix cell crosses: native online implementations
/// first, then simulation heuristics through the serving bridge.
pub const MATRIX_POLICIES: [&str; 5] = ["LRU", "GDSF", "S3FIFO", "LruDist", "LSNF"];

/// Capacity fractions of each trace's unique bytes.
pub const CAPACITY_FRACTIONS: [f64; 3] = [0.01, 0.03, 0.10];

/// Trace shapes in matrix order.
pub const TRACE_SHAPES: [&str; 4] = ["zipf", "scan", "mixed", "tenants"];

/// One replayed request.
struct Req {
    key: String,
    tenant: &'static str,
    bytes: u64,
}

/// One matrix cell's outcome.
pub struct CellResult {
    pub trace: &'static str,
    pub policy: &'static str,
    pub fraction: f64,
    pub capacity_bytes: u64,
    pub requests: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub uncacheable: u64,
    pub bytes_used: u64,
    pub quota_violations: u64,
    pub accounting_ok: bool,
}

impl CellResult {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"trace\": \"{}\", \"policy\": \"{}\", \"fraction\": {}, \
             \"capacity_bytes\": {}, \"requests\": {}, \"hits\": {}, \"misses\": {}, \
             \"hit_rate\": {:.6}, \"evictions\": {}, \"uncacheable\": {}, \
             \"bytes_used\": {}, \"quota_violations\": {}, \"accounting_ok\": {}}}",
            self.trace,
            self.policy,
            self.fraction,
            self.capacity_bytes,
            self.requests,
            self.hits,
            self.misses,
            self.hit_rate(),
            self.evictions,
            self.uncacheable,
            self.bytes_used,
            self.quota_violations,
            self.accounting_ok,
        )
    }
}

/// A key's deterministic byte footprint in `[lo, hi)`, from its FNV
/// fingerprint — stable across runs and platforms.
fn size_for(key: &str, lo: u64, hi: u64) -> u64 {
    lo + engine::fingerprint64(key) % (hi - lo)
}

/// A zipfian sampler over ranks `0..n` with exponent `alpha`.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, alpha: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(alpha);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty zipf");
        let u = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < u)
    }
}

const KIB: u64 = 1024;

fn zipf_trace(n: usize, seed: u64) -> Vec<Req> {
    let zipf = Zipf::new(400, 0.9);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let key = format!("z{}", zipf.sample(&mut rng));
            let bytes = size_for(&key, KIB, 32 * KIB);
            Req {
                key,
                tenant: "public",
                bytes,
            }
        })
        .collect()
}

fn scan_trace(n: usize, seed: u64) -> Vec<Req> {
    let zipf = Zipf::new(64, 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_scan = 0u64;
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.15 {
                let key = format!("hot{}", zipf.sample(&mut rng));
                let bytes = size_for(&key, 4 * KIB, 8 * KIB);
                Req {
                    key,
                    tenant: "public",
                    bytes,
                }
            } else {
                next_scan += 1;
                Req {
                    key: format!("scan{next_scan}"),
                    tenant: "public",
                    bytes: 128 * KIB,
                }
            }
        })
        .collect()
}

fn mixed_trace(n: usize, seed: u64) -> Vec<Req> {
    let zipf = Zipf::new(300, 0.9);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_scan = 0u64;
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.25 {
                // The pollution stream: unique large items, never reused.
                next_scan += 1;
                let key = format!("cold{next_scan}");
                let bytes = size_for(&key, 100 * KIB, 400 * KIB);
                Req {
                    key,
                    tenant: "public",
                    bytes,
                }
            } else {
                let key = format!("m{}", zipf.sample(&mut rng));
                let bytes = size_for(&key, KIB, 8 * KIB);
                Req {
                    key,
                    tenant: "public",
                    bytes,
                }
            }
        })
        .collect()
}

fn tenants_trace(n: usize, seed: u64) -> Vec<Req> {
    let beta = Zipf::new(200, 0.9);
    let gamma = Zipf::new(50, 0.9);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_scan = 0u64;
    (0..n)
        .map(|_| {
            let roll = rng.gen::<f64>();
            if roll < 0.4 {
                // Tenant alpha: a scan flood of large one-shot items.
                next_scan += 1;
                let key = format!("a{next_scan}");
                let bytes = size_for(&key, 64 * KIB, 256 * KIB);
                Req {
                    key,
                    tenant: "alpha",
                    bytes,
                }
            } else if roll < 0.8 {
                let key = format!("b{}", beta.sample(&mut rng));
                let bytes = size_for(&key, KIB, 8 * KIB);
                Req {
                    key,
                    tenant: "beta",
                    bytes,
                }
            } else {
                let key = format!("g{}", gamma.sample(&mut rng));
                let bytes = size_for(&key, 8 * KIB, 32 * KIB);
                Req {
                    key,
                    tenant: "gamma",
                    bytes,
                }
            }
        })
        .collect()
}

fn trace_for(shape: &str, n: usize, seed: u64) -> Vec<Req> {
    match shape {
        "zipf" => zipf_trace(n, seed),
        "scan" => scan_trace(n, seed),
        "mixed" => mixed_trace(n, seed),
        "tenants" => tenants_trace(n, seed),
        other => panic!("unknown trace shape '{other}'"),
    }
}

/// Sum of the distinct keys' footprints: the byte mass a cache of fraction
/// 1.0 would need to hold everything.
fn unique_bytes(trace: &[Req]) -> u64 {
    let mut seen = HashSet::new();
    trace
        .iter()
        .filter(|r| seen.insert(r.key.as_str()))
        .map(|r| r.bytes)
        .sum()
}

/// Replay one trace through a [`CacheCore`] under `policy` with the given
/// byte capacity (and, for the `tenants` trace, quotas + floor).  Quota
/// compliance and byte accounting are audited at sampled points and at the
/// end; any breach is counted, never masked.
fn replay(
    trace_name: &'static str,
    trace: &[Req],
    policy: &'static str,
    fraction: f64,
    capacity: u64,
    quota: Option<u64>,
    floor: f64,
) -> CellResult {
    let registry = ServingPolicyRegistry::with_builtin();
    let core: CacheCore<()> = CacheCore::new(
        CacheConfig {
            policy: policy.to_string(),
            bytes_capacity: capacity,
            max_entries: None,
            ttl: None,
            tenant_quota_bytes: quota,
            tenant_floor: floor,
            lock_class: "bench.trace-cache",
        },
        &registry,
    )
    .expect("matrix policies are registered");
    let mut quota_violations = 0u64;
    let mut accounting_ok = true;
    for (index, req) in trace.iter().enumerate() {
        if core.get(&req.key, req.tenant).is_none() {
            core.insert(&req.key, req.tenant, Arc::new(()), req.bytes);
        }
        // Audit at sampled points: capacity, quotas, internal accounting.
        if index % 997 == 0 {
            let stats = core.stats();
            if stats.bytes_used > capacity {
                quota_violations += 1;
            }
            if let Some(quota) = quota {
                for tenant in &stats.per_tenant {
                    if tenant.bytes > quota {
                        quota_violations += 1;
                    }
                }
            }
            if core.validate_accounting().is_err() {
                accounting_ok = false;
            }
        }
    }
    let stats = core.stats();
    if stats.bytes_used > capacity {
        quota_violations += 1;
    }
    if let Some(quota) = quota {
        for tenant in &stats.per_tenant {
            if tenant.bytes > quota {
                quota_violations += 1;
            }
        }
    }
    if core.validate_accounting().is_err() {
        accounting_ok = false;
    }
    CellResult {
        trace: trace_name,
        policy,
        fraction,
        capacity_bytes: capacity,
        requests: trace.len(),
        hits: stats.hits,
        misses: stats.misses,
        evictions: stats.evictions,
        uncacheable: stats.uncacheable,
        bytes_used: stats.bytes_used,
        quota_violations,
        accounting_ok,
    }
}

/// Requests per matrix cell for one trace shape.
fn cell_requests(shape: &str, quick: bool) -> usize {
    let full = match shape {
        "mixed" => 12_000,
        _ => 8_000,
    };
    if quick {
        full / 8
    } else {
        full
    }
}

/// Replay the whole {trace × policy × capacity} matrix.
pub fn run_matrix(quick: bool) -> Vec<CellResult> {
    let mut cells = Vec::new();
    for shape in TRACE_SHAPES {
        let n = cell_requests(shape, quick);
        let trace = trace_for(shape, n, 0xC0FFEE ^ n as u64);
        let total = unique_bytes(&trace);
        for policy in MATRIX_POLICIES {
            for fraction in CAPACITY_FRACTIONS {
                let capacity = ((total as f64 * fraction) as u64).max(512 * KIB);
                let (quota, floor) = if shape == "tenants" {
                    (Some(capacity / 3), 0.4)
                } else {
                    (None, 0.0)
                };
                cells.push(replay(
                    shape, &trace, policy, fraction, capacity, quota, floor,
                ));
            }
        }
    }
    cells
}

/// The deep section: the `mixed` adversary at scale for the native
/// policies, pushing the stub-request total past 10⁶ in full mode.
pub fn run_deep() -> Vec<CellResult> {
    let n = 200_000;
    let trace = mixed_trace(n, 0xDEE9);
    let total = unique_bytes(&trace);
    ["LRU", "GDSF", "S3FIFO"]
        .into_iter()
        .map(|policy| {
            let fraction = 0.03;
            let capacity = ((total as f64 * fraction) as u64).max(512 * KIB);
            replay("mixed-deep", &trace, policy, fraction, capacity, None, 0.0)
        })
        .collect()
}

/// Outcome of the end-to-end HTTP pass.
pub struct HttpPassResult {
    pub requests: usize,
    pub zeta_hits: u64,
    pub violations: Vec<String>,
    pub stats_body: String,
}

/// The end-to-end pass: a real server with byte-budget caches and tenant
/// quotas, two tenants over loopback HTTP with `X-Tenant` headers — `acme`
/// floods unique configurations, `zeta` re-reads a small hot set.  Gates:
/// `zeta` keeps hitting despite the flood, no tenant's resident bytes
/// exceed the quota, and `/stats` carries the versioned `caches` object.
pub fn run_http_pass(quick: bool) -> HttpPassResult {
    let mut violations = Vec::new();
    // Size the budgets from a measured plan footprint so the pass
    // exercises real evictions without starving the hot set.
    let engine = Engine::new();
    let probe = EngineConfig::generated(ProblemKind::Grid2d, 100, 1);
    let plan_bytes = engine
        .plan(&probe)
        .map(|plan| plan.approx_heap_bytes())
        .unwrap_or(64 * KIB)
        .max(KIB);
    let handle = Server::spawn(ServerConfig {
        workers: 2,
        cache: CacheSettings {
            policy: Some("GDSF".to_string()),
            plan_bytes: Some(plan_bytes * 16),
            factor_bytes: Some(256 * 1024 * KIB),
            tenant_quota_bytes: Some(plan_bytes * 6),
            tenant_floor: 0.3,
        },
        ..ServerConfig::default()
    })
    .expect("spawning the trace server failed");
    let addr = handle.addr();

    let hot: Vec<String> = (0..4)
        .map(|seed| EngineConfig::generated(ProblemKind::Grid2d, 100, 1000 + seed).to_json())
        .collect();
    let rounds = if quick { 6 } else { 30 };
    let mut requests = 0usize;
    for round in 0..rounds {
        // zeta's hot set...
        for config in &hot {
            let response =
                client::post_with_headers(addr, "/plan", &[("X-Tenant", "zeta")], config);
            requests += 1;
            match response {
                Ok(response) => {
                    if response.status != 200 {
                        violations.push(format!("zeta /plan -> {}", response.status));
                    }
                }
                Err(e) => violations.push(format!("zeta /plan transport: {e}")),
            }
        }
        // ...interleaved with acme's flood of unique configurations.
        for burst in 0..3 {
            let seed = 50_000 + round * 10 + burst;
            let config = EngineConfig::generated(ProblemKind::Grid2d, 100, seed as u64).to_json();
            let response =
                client::post_with_headers(addr, "/plan", &[("X-Tenant", "acme")], &config);
            requests += 1;
            if let Ok(response) = response {
                if response.status != 200 {
                    violations.push(format!("acme /plan -> {}", response.status));
                }
            }
        }
    }
    // A bad tenant name is rejected before any handler runs.
    match client::post_with_headers(addr, "/plan", &[("X-Tenant", "no spaces!")], &hot[0]) {
        Ok(response) if response.status == 400 => {}
        Ok(response) => violations.push(format!("invalid X-Tenant -> {}", response.status)),
        Err(e) => violations.push(format!("invalid X-Tenant transport: {e}")),
    }

    let stats_body = client::get(addr, "/stats")
        .map(|response| response.body)
        .unwrap_or_else(|e| {
            violations.push(format!("/stats failed: {e}"));
            String::new()
        });
    let stats = Json::parse(&stats_body).unwrap_or(Json::Null);
    let plan_cache = stats.get("caches").and_then(|c| c.get("plan"));
    let mut zeta_hits = 0;
    match plan_cache {
        Some(section) => {
            if section.get("policy").and_then(Json::as_str) != Some("GDSF") {
                violations.push("caches.plan.policy is not GDSF".to_string());
            }
            let quota = plan_bytes * 6;
            for tenant in ["acme", "zeta"] {
                let usage = section.get("tenants").and_then(|t| t.get(tenant));
                let Some(usage) = usage else {
                    violations.push(format!("caches.plan.tenants.{tenant} missing"));
                    continue;
                };
                let bytes = usage.get("bytes").and_then(Json::as_u64).unwrap_or(0);
                if bytes > quota {
                    violations.push(format!(
                        "tenant {tenant} holds {bytes} bytes over its quota {quota}"
                    ));
                }
                if tenant == "zeta" {
                    zeta_hits = usage.get("hits").and_then(Json::as_u64).unwrap_or(0);
                }
            }
            if zeta_hits == 0 {
                violations.push("zeta's hot set never hit despite acme's flood".to_string());
            }
        }
        None => violations.push("/stats has no caches.plan object".to_string()),
    }
    if handle.shutdown().is_err() {
        violations.push("trace server did not shut down cleanly".to_string());
    }
    HttpPassResult {
        requests,
        zeta_hits,
        violations,
        stats_body,
    }
}

/// The checked-in reference path (quick-mode cell identity).
pub fn reference_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("data")
        .join("cache_reference.json")
}

/// Render the reference document for a quick-mode matrix.
pub fn reference_json(cells: &[CellResult]) -> String {
    let mut out = String::from("{\n  \"schema\": \"bench_cache_reference/v1\",\n  \"cells\": [\n");
    for (index, cell) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"trace\": \"{}\", \"policy\": \"{}\", \"fraction\": {}, \
             \"requests\": {}, \"hits\": {}, \"evictions\": {}}}",
            cell.trace, cell.policy, cell.fraction, cell.requests, cell.hits, cell.evictions
        );
        out.push_str(if index + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compare a quick-mode matrix against the committed reference; returns
/// the mismatches (empty = identical).
pub fn check_reference(cells: &[CellResult], reference: &str) -> Vec<String> {
    let mut mismatches = Vec::new();
    let Ok(json) = Json::parse(reference) else {
        return vec!["reference file is not valid JSON".to_string()];
    };
    let Some(reference_cells) = json.get("cells").and_then(Json::as_array) else {
        return vec!["reference file has no cells array".to_string()];
    };
    if reference_cells.len() != cells.len() {
        mismatches.push(format!(
            "reference has {} cells, this run produced {}",
            reference_cells.len(),
            cells.len()
        ));
        return mismatches;
    }
    for (cell, expected) in cells.iter().zip(reference_cells) {
        let name = format!("{}/{}/{}", cell.trace, cell.policy, cell.fraction);
        let field = |key: &str| expected.get(key).and_then(Json::as_u64).unwrap_or(u64::MAX);
        if expected.get("trace").and_then(Json::as_str) != Some(cell.trace)
            || expected.get("policy").and_then(Json::as_str) != Some(cell.policy)
        {
            mismatches.push(format!("{name}: cell order diverged from the reference"));
            continue;
        }
        if field("requests") != cell.requests as u64 {
            mismatches.push(format!(
                "{name}: requests {} != reference {}",
                cell.requests,
                field("requests")
            ));
        }
        if field("hits") != cell.hits {
            mismatches.push(format!(
                "{name}: hits {} != reference {} (replay must be deterministic)",
                cell.hits,
                field("hits")
            ));
        }
        if field("evictions") != cell.evictions {
            mismatches.push(format!(
                "{name}: evictions {} != reference {}",
                cell.evictions,
                field("evictions")
            ));
        }
    }
    mismatches
}

/// Matrix-wide gates: GDSF ≥ LRU on the mixed trace at every capacity,
/// zero quota violations, clean accounting everywhere.  Returns the
/// violated invariants.
pub fn check_gates(matrix: &[CellResult], deep: &[CellResult]) -> Vec<String> {
    let cells: Vec<&CellResult> = matrix.iter().chain(deep.iter()).collect();
    let mut violations = Vec::new();
    for cell in &cells {
        if !cell.accounting_ok {
            violations.push(format!(
                "{}/{}/{}: byte accounting drifted",
                cell.trace, cell.policy, cell.fraction
            ));
        }
        if cell.quota_violations > 0 {
            violations.push(format!(
                "{}/{}/{}: {} quota/capacity violation(s)",
                cell.trace, cell.policy, cell.fraction, cell.quota_violations
            ));
        }
    }
    for trace in ["mixed", "mixed-deep"] {
        for fraction in CAPACITY_FRACTIONS {
            let rate = |policy: &str| {
                cells
                    .iter()
                    .find(|c| c.trace == trace && c.policy == policy && c.fraction == fraction)
                    .map(|c| c.hit_rate())
            };
            if let (Some(gdsf), Some(lru)) = (rate("GDSF"), rate("LRU")) {
                if gdsf < lru {
                    violations.push(format!(
                        "{trace} at fraction {fraction}: GDSF hit rate {gdsf:.4} \
                         below LRU {lru:.4}"
                    ));
                }
            }
        }
    }
    violations
}

/// Render the full `BENCH_cache.json` document.
pub fn bench_json(
    mode: &str,
    matrix: &[CellResult],
    deep: &[CellResult],
    http: &HttpPassResult,
    gate_violations: &[String],
) -> String {
    let stub_requests: usize = matrix.iter().chain(deep.iter()).map(|c| c.requests).sum();
    let mut out = String::from("{\n  \"schema\": \"bench_cache/v1\",\n");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"total_stub_requests\": {stub_requests},");
    let _ = writeln!(out, "  \"http_requests\": {},", http.requests);
    let _ = writeln!(
        out,
        "  \"policies\": [{}],",
        MATRIX_POLICIES
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"capacity_fractions\": [{}],",
        CAPACITY_FRACTIONS
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  \"matrix\": [\n");
    for (index, cell) in matrix.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&cell.to_json());
        out.push_str(if index + 1 < matrix.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"deep\": [\n");
    for (index, cell) in deep.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&cell.to_json());
        out.push_str(if index + 1 < deep.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"gates\": {{\"violations\": {}, \"zeta_hits\": {}}},",
        gate_violations.len() + http.violations.len(),
        http.zeta_hits
    );
    let _ = writeln!(out, "  \"server_stats\": {}", http.stats_body.trim_end());
    out.push_str("}\n");
    out
}
