//! Report output: every experiment binary prints its tables to stdout and
//! writes machine-readable CSV files under `results/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A report file to be written under the results directory.
#[derive(Debug, Clone)]
pub struct ReportFile {
    /// File name (relative to the results directory).
    pub name: String,
    /// File contents.
    pub contents: String,
}

impl ReportFile {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, contents: impl Into<String>) -> Self {
        ReportFile {
            name: name.into(),
            contents: contents.into(),
        }
    }
}

/// Default results directory (relative to the workspace root / current
/// directory): `results/`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("TREEMEM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Write the report files under the results directory, creating it if
/// needed, and return the paths written.
pub fn write_report(experiment: &str, files: &[ReportFile]) -> io::Result<Vec<PathBuf>> {
    let directory = results_dir().join(experiment);
    fs::create_dir_all(&directory)?;
    let mut written = Vec::with_capacity(files.len());
    for file in files {
        let path = directory.join(&file.name);
        write_file(&path, &file.contents)?;
        written.push(path);
    }
    Ok(written)
}

fn write_file(path: &Path, contents: &str) -> io::Result<()> {
    fs::write(path, contents)
}

/// Parse the experiment command line: returns `true` when `--quick` was
/// passed (smaller corpus) and exposes any `--seed <n>` override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// Run with the reduced corpus.
    pub quick: bool,
    /// Seed override for randomized corpora.
    pub seed: u64,
}

impl ExperimentArgs {
    /// Parse `std::env::args()`.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_slice(&args)
    }

    /// Parse an explicit argument list (used by tests).
    pub fn from_slice(args: &[String]) -> Self {
        let mut quick = false;
        let mut seed = 42;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--seed" => {
                    if let Some(value) = iter.next() {
                        if let Ok(parsed) = value.parse() {
                            seed = parsed;
                        }
                    }
                }
                _ => {}
            }
        }
        ExperimentArgs { quick, seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argument_parsing() {
        let args = ExperimentArgs::from_slice(&[]);
        assert!(!args.quick);
        assert_eq!(args.seed, 42);
        let args = ExperimentArgs::from_slice(&["--quick".into(), "--seed".into(), "7".into()]);
        assert!(args.quick);
        assert_eq!(args.seed, 7);
    }

    #[test]
    fn report_files_are_written() {
        let unique = format!("selftest-{}", std::process::id());
        std::env::set_var(
            "TREEMEM_RESULTS_DIR",
            std::env::temp_dir().join("treemem-results"),
        );
        let written = write_report(&unique, &[ReportFile::new("a.csv", "x,y\n1,2\n")]).unwrap();
        assert_eq!(written.len(), 1);
        let content = std::fs::read_to_string(&written[0]).unwrap();
        assert!(content.contains("x,y"));
        std::fs::remove_dir_all(results_dir().join(&unique)).ok();
        std::env::remove_var("TREEMEM_RESULTS_DIR");
    }
}
