//! End-to-end tests of the `factor_cli` binary: the happy path on a real
//! MatrixMarket file and the error paths on malformed input.

use std::process::Command;

fn factor_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_factor_cli"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("factor-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file written");
    path
}

#[test]
fn runs_end_to_end_on_a_matrix_market_file() {
    let pattern = sparsemat::gen::grid2d_5pt(6, 6);
    let path = write_temp(
        "grid.mtx",
        &sparsemat::matrixmarket::write_pattern(&pattern),
    );
    let output = factor_cli()
        .args(["--mtx", path.to_str().unwrap()])
        .args(["--ordering", "amd", "--amalgamation", "4"])
        .args(["--policy", "FirstFit", "--memory-fraction", "0.0"])
        .arg("--print-config")
        .output()
        .expect("factor_cli runs");
    std::fs::remove_file(&path).ok();
    assert!(output.status.success(), "stderr: {}", text(&output.stderr));
    let stdout = text(&output.stdout);
    assert!(stdout.contains("\"schema\": \"engine_report/v1\""));
    assert!(stdout.contains("\"matrix_n\": 36"));
    assert!(stdout.contains("\"io_volume\":"));
    assert!(stdout.contains("\"config_hash\":"));
    // --print-config dumps a round-trippable configuration on stderr.
    let config = engine::EngineConfig::from_json(&text(&output.stderr)).unwrap();
    assert_eq!(config.policy, "FirstFit");
}

#[test]
fn generated_problems_work_without_a_file() {
    let output = factor_cli()
        .args(["--kind", "grid2d", "--nodes", "100", "--seed", "7"])
        .args(["--solver", "postorder", "--numeric"])
        .output()
        .expect("factor_cli runs");
    assert!(output.status.success(), "stderr: {}", text(&output.stderr));
    let stdout = text(&output.stdout);
    assert!(stdout.contains("\"numeric\": {\"measured_peak_entries\":"));
}

#[test]
fn truncated_header_is_a_clean_error() {
    let path = write_temp("truncated.mtx", "%%MatrixMarket matrix\n");
    let output = factor_cli()
        .args(["--mtx", path.to_str().unwrap()])
        .output()
        .expect("factor_cli runs");
    std::fs::remove_file(&path).ok();
    assert!(!output.status.success());
    assert_eq!(output.status.code(), Some(1));
    let stderr = text(&output.stderr);
    assert!(
        stderr.contains("bad MatrixMarket header"),
        "stderr: {stderr}"
    );
}

#[test]
fn bad_entry_count_is_a_clean_error() {
    // The size line announces 5 entries but only 2 follow.
    let path = write_temp(
        "short.mtx",
        "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 5\n1 1\n2 1\n",
    );
    let output = factor_cli()
        .args(["--mtx", path.to_str().unwrap()])
        .output()
        .expect("factor_cli runs");
    std::fs::remove_file(&path).ok();
    assert!(!output.status.success());
    let stderr = text(&output.stderr);
    assert!(
        stderr.contains("fewer entries than announced"),
        "stderr: {stderr}"
    );
}

#[test]
fn unknown_names_exit_with_the_registry_catalogue() {
    let output = factor_cli()
        .args(["--kind", "grid2d", "--nodes", "50", "--policy", "nope"])
        .output()
        .expect("factor_cli runs");
    assert!(!output.status.success());
    let stderr = text(&output.stderr);
    assert!(stderr.contains("unknown policy 'nope'"), "stderr: {stderr}");
    assert!(stderr.contains("LSNF"), "stderr lists the catalogue");
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}
