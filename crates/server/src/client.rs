//! A tiny blocking HTTP/1.1 client for exercising the server: one request
//! per connection, mirroring the server's `Connection: close` framing.
//! Used by the integration tests and by `bench`'s `loadgen` binary — it is
//! a test/bench utility, not a general-purpose client.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response: status code, lower-cased headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First header named `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the response was served from the plan cache
    /// (`X-Cache: hit`).
    pub fn cache_hit(&self) -> bool {
        self.header("x-cache") == Some("hit")
    }
}

/// Errors of one exchange (connect/send/receive/decode).
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "HTTP client: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

fn fail(context: &str, error: impl std::fmt::Display) -> ClientError {
    ClientError(format!("{context}: {error}"))
}

/// Send `raw` to `addr` and decode the single response, giving the server
/// two minutes to answer.
pub fn exchange(addr: SocketAddr, raw: &[u8]) -> Result<ClientResponse, ClientError> {
    exchange_with_timeout(addr, raw, Duration::from_secs(120))
}

/// [`exchange`] with an explicit read timeout, for requests that legitimately
/// block far longer than interactive ones — a distributed `/report` waits for
/// every worker contribution, which at large orders outlives any
/// interactive-scale budget.
pub fn exchange_with_timeout(
    addr: SocketAddr,
    raw: &[u8],
    read_timeout: Duration,
) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))
        .map_err(|e| fail("connect", e))?;
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(|e| fail("timeout", e))?;
    stream.write_all(raw).map_err(|e| fail("send", e))?;
    let mut bytes = Vec::new();
    stream
        .read_to_end(&mut bytes)
        .map_err(|e| fail("receive", e))?;
    let text = String::from_utf8(bytes).map_err(|e| fail("decode", e))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError("response has no header/body separator".to_string()))?;
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| ClientError("unparsable status line".to_string()))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// `POST` a JSON body to `path`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
    post_with_headers(addr, path, &[], body)
}

/// [`post`] with an explicit read timeout (see [`exchange_with_timeout`]).
pub fn post_with_timeout(
    addr: SocketAddr,
    path: &str,
    body: &str,
    read_timeout: Duration,
) -> Result<ClientResponse, ClientError> {
    exchange_with_timeout(addr, encode_post(path, &[], body).as_bytes(), read_timeout)
}

/// `POST` a JSON body to `path` with extra request headers (e.g.
/// `X-Deadline-Ms`).
pub fn post_with_headers(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> Result<ClientResponse, ClientError> {
    exchange(addr, encode_post(path, headers, body).as_bytes())
}

fn encode_post(path: &str, headers: &[(&str, &str)], body: &str) -> String {
    let mut raw = format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str("\r\n");
    raw.push_str(body);
    raw
}

/// `POST` with retries: transport errors — connection-refused included, so
/// a worker racing its coordinator's boot just keeps dialing — and
/// transient statuses (503 shed load, 504 expired deadline) back off
/// exponentially from 10 ms, doubling per attempt with ±25% jitter and
/// capped at `max_backoff`.  A `Retry-After` header (whole seconds, as the
/// server sends) overrides the computed backoff, still under the same cap.
/// Returns the first conclusive response, the last transient *response*
/// once `attempts` are exhausted, or — when the final attempt also died in
/// transport — an error naming the attempt count.
pub fn post_with_retry(
    addr: SocketAddr,
    path: &str,
    body: &str,
    attempts: usize,
    max_backoff: Duration,
) -> Result<ClientResponse, ClientError> {
    let attempts = attempts.max(1);
    let mut backoff = Duration::from_millis(10);
    let mut last: Option<Result<ClientResponse, ClientError>> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(jittered(backoff.min(max_backoff)));
            backoff = backoff.saturating_mul(2);
        }
        match post(addr, path, body) {
            Ok(response) if response.status == 503 || response.status == 504 => {
                if let Some(seconds) = response
                    .header("retry-after")
                    .and_then(|value| value.parse::<u64>().ok())
                {
                    backoff = Duration::from_secs(seconds).min(max_backoff);
                }
                last = Some(Ok(response));
            }
            Ok(response) => return Ok(response),
            Err(error) => last = Some(Err(error)),
        }
    }
    match last {
        Some(Ok(response)) => Ok(response),
        Some(Err(ClientError(message))) => Err(ClientError(format!(
            "giving up after {attempts} attempts: {message}"
        ))),
        // `attempts` is clamped to at least 1, so the loop always records an
        // outcome; keep the impossible case a typed error, not a panic.
        None => Err(ClientError(format!(
            "giving up after {attempts} attempts with no response"
        ))),
    }
}

/// Scale `base` by a random factor in `[0.75, 1.25)`, freshly seeded from
/// the OS per call: a fleet of workers that all saw the same refusal must
/// not re-dial the coordinator in lockstep.
fn jittered(base: Duration) -> Duration {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let bits = RandomState::new().build_hasher().finish();
    let fraction = (bits >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(0.75 + 0.5 * fraction)
}

/// `GET` `path`.
pub fn get(addr: SocketAddr, path: &str) -> Result<ClientResponse, ClientError> {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n").as_bytes(),
    )
}

/// Parse a `/report` body and drop its wall-clock `timings` block: the
/// deterministic identity of the report, as seen from the wire.  Two runs
/// of the same effective configuration — cache hit or cold path — must
/// compare equal under this projection (`None` if the body is not a JSON
/// object).  The client-side analogue of `engine::Report::fingerprint`.
pub fn report_identity(body: &str) -> Option<engine::json::Json> {
    use engine::json::Json;
    match Json::parse(body) {
        Ok(Json::Obj(fields)) => Some(Json::Obj(
            fields.into_iter().filter(|(k, _)| k != "timings").collect(),
        )),
        _ => None,
    }
}

/// [`report_identity`] for parallel- or distributed-enabled reports:
/// additionally drops the runtime-dependent fields of the `parallel` and
/// `distributed` sections (wall clocks, worker counts, requeue counters,
/// transfer volumes) and, when either section is present,
/// `numeric.measured_peak_entries` — the wire-side analogue of
/// `engine::Report::fingerprint`.
pub fn report_fingerprint(body: &str) -> Option<engine::json::Json> {
    use engine::json::Json;
    const VOLATILE_PARALLEL: [&str; 9] = [
        "workers",
        "measured_peak_entries",
        "forced_admissions",
        "wall_seconds",
        "critical_path_seconds",
        "merge_seconds",
        "task_seconds",
        "worker_busy_seconds",
        "utilization",
    ];
    const VOLATILE_DISTRIBUTED: [&str; 7] = [
        "workers",
        "tasks_requeued",
        "lease_expiries",
        "contribution_bytes",
        "wall_seconds",
        "merge_seconds",
        "worker_busy_seconds",
    ];
    let Ok(Json::Obj(fields)) = Json::parse(body) else {
        return None;
    };
    let runtime_active = fields.iter().any(|(key, value)| {
        (key == "parallel" || key == "distributed") && matches!(value, Json::Obj(_))
    });
    let projected = fields
        .into_iter()
        .filter(|(key, _)| key != "timings")
        .map(|(key, value)| {
            let value = match (key.as_str(), value) {
                ("parallel", Json::Obj(inner)) => Json::Obj(
                    inner
                        .into_iter()
                        .filter(|(name, _)| !VOLATILE_PARALLEL.contains(&name.as_str()))
                        .collect(),
                ),
                ("distributed", Json::Obj(inner)) => Json::Obj(
                    inner
                        .into_iter()
                        .filter(|(name, _)| !VOLATILE_DISTRIBUTED.contains(&name.as_str()))
                        .collect(),
                ),
                ("numeric", Json::Obj(inner)) if runtime_active => Json::Obj(
                    inner
                        .into_iter()
                        .filter(|(name, _)| name != "measured_peak_entries")
                        .collect(),
                ),
                (_, value) => value,
            };
            (key, value)
        })
        .collect();
    Some(Json::Obj(projected))
}
