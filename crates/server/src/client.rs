//! A tiny blocking HTTP/1.1 client for exercising the server: one request
//! per connection, mirroring the server's `Connection: close` framing.
//! Used by the integration tests and by `bench`'s `loadgen` binary — it is
//! a test/bench utility, not a general-purpose client.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response: status code, lower-cased headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First header named `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the response was served from the plan cache
    /// (`X-Cache: hit`).
    pub fn cache_hit(&self) -> bool {
        self.header("x-cache") == Some("hit")
    }
}

/// Errors of one exchange (connect/send/receive/decode).
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "HTTP client: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

fn fail(context: &str, error: impl std::fmt::Display) -> ClientError {
    ClientError(format!("{context}: {error}"))
}

/// Send `raw` to `addr` and decode the single response.
pub fn exchange(addr: SocketAddr, raw: &[u8]) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))
        .map_err(|e| fail("connect", e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| fail("timeout", e))?;
    stream.write_all(raw).map_err(|e| fail("send", e))?;
    let mut bytes = Vec::new();
    stream
        .read_to_end(&mut bytes)
        .map_err(|e| fail("receive", e))?;
    let text = String::from_utf8(bytes).map_err(|e| fail("decode", e))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError("response has no header/body separator".to_string()))?;
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| ClientError("unparsable status line".to_string()))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// `POST` a JSON body to `path`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
    exchange(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// `GET` `path`.
pub fn get(addr: SocketAddr, path: &str) -> Result<ClientResponse, ClientError> {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n").as_bytes(),
    )
}

/// Parse a `/report` body and drop its wall-clock `timings` block: the
/// deterministic identity of the report, as seen from the wire.  Two runs
/// of the same effective configuration — cache hit or cold path — must
/// compare equal under this projection (`None` if the body is not a JSON
/// object).  The client-side analogue of `engine::Report::fingerprint`.
pub fn report_identity(body: &str) -> Option<engine::json::Json> {
    use engine::json::Json;
    match Json::parse(body) {
        Ok(Json::Obj(fields)) => Some(Json::Obj(
            fields.into_iter().filter(|(k, _)| k != "timings").collect(),
        )),
        _ => None,
    }
}
