//! Request routing and the endpoint handlers, independent of any socket:
//! [`Service::handle_request`] maps a parsed [`Request`] to a [`Response`],
//! which makes the whole API surface testable without binding a port.

use std::sync::Arc;
use std::time::{Duration, Instant};

use distrib::{ClaimRequest, ContributeError, Contribution, JobRegistry, JobSpec, WaitError};
use engine::json::{escape, Json};
use engine::prelude::*;
use engine::{CacheStats, CancelToken, PlanCache, MAX_SOLVE_RHS};

use crate::factors::FactorCache;
use crate::http::{reason_phrase, Request};
use crate::stats::ServerStats;

/// Everything the handlers share: the engine, the plan and factor caches,
/// the distributed-job registry, and the observability counters.
pub struct Service {
    engine: Engine,
    cache: PlanCache,
    factors: FactorCache,
    stats: ServerStats,
    /// Coordinator state for distributed runs: live jobs, leases, cluster
    /// counters.
    registry: JobRegistry,
    workers: usize,
    /// Deadline applied when a request names none.
    default_deadline: Option<Duration>,
    /// Ceiling on every deadline, requested or defaulted.  When set, even
    /// requests that ask for no deadline run under it.
    max_deadline: Option<Duration>,
}

/// A response ready for framing: status, body, and the cache disposition
/// (`Some(true)` = served from a cached plan) for the `X-Cache` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// Plan-cache disposition, when the endpoint consulted the cache.
    pub cache_hit: Option<bool>,
    /// Effective-config hash, when the endpoint resolved one.
    pub config_hash: Option<String>,
}

impl Response {
    fn ok(body: String) -> Self {
        Response {
            status: 200,
            body,
            cache_hit: None,
            config_hash: None,
        }
    }

    /// An error response with a JSON body naming the cause.
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            body: format!(
                "{{\"error\": \"{}\", \"status\": {status}, \"reason\": \"{}\"}}\n",
                escape(message),
                reason_phrase(status)
            ),
            cache_hit: None,
            config_hash: None,
        }
    }
}

impl Service {
    /// A service over the built-in registries with the given plan and
    /// factor caches and worker count (the latter only reported in
    /// `/stats`).
    pub fn new(cache: PlanCache, factors: FactorCache, workers: usize) -> Self {
        Service {
            engine: Engine::new(),
            cache,
            factors,
            stats: ServerStats::new(),
            registry: JobRegistry::new(Arc::new(distrib::ClusterStats::new())),
            workers,
            default_deadline: None,
            max_deadline: None,
        }
    }

    /// Set the request-deadline policy: `default` applies when a request
    /// names no deadline, `max` caps every deadline (and bounds requests
    /// that asked for none at all).
    pub fn with_deadlines(mut self, default: Option<Duration>, max: Option<Duration>) -> Self {
        self.default_deadline = default;
        self.max_deadline = max;
        self
    }

    /// The observability counters (shared with the connection layer).
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The distributed-job registry (coordinator state).
    pub fn registry(&self) -> &JobRegistry {
        &self.registry
    }

    /// Current plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Current factor-cache counters.
    pub fn factor_cache_stats(&self) -> CacheStats {
        self.factors.stats()
    }

    /// Route one parsed request to its handler.  Never panics on hostile
    /// input: every failure is a status code plus a JSON error body.
    pub fn handle_request(&self, request: &Request) -> Response {
        let started = Instant::now();
        let response = self.route(request);
        let endpoint = request.path.trim_start_matches('/');
        if response.status == 200 {
            if let Some(recorder) = self.stats.endpoint(endpoint) {
                recorder.record(started.elapsed().as_secs_f64());
            }
        }
        self.stats.count_response(response.status);
        response
    }

    fn route(&self, request: &Request) -> Response {
        let header_deadline = match header_deadline_ms(request) {
            Ok(value) => value,
            Err(response) => return response,
        };
        let tenant = match request_tenant(request) {
            Ok(tenant) => tenant,
            Err(response) => return response,
        };
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Response::ok("{\"status\": \"ok\"}\n".to_string()),
            ("GET", "/stats") => Response::ok(self.stats.to_json(
                &self.cache.stats(),
                &self.factors.stats(),
                self.workers,
                &self.registry.stats().snapshot(),
            )),
            ("POST", "/plan") => self.handle_plan(&request.body, header_deadline, &tenant),
            ("POST", "/schedule") => self.handle_schedule(&request.body, header_deadline, &tenant),
            ("POST", "/report") => self.handle_report(&request.body, header_deadline, &tenant),
            ("POST", "/solve") => self.handle_solve(&request.body, header_deadline, &tenant),
            ("POST", "/internal/claim") => self.handle_claim(&request.body),
            ("POST", "/internal/contribute") => self.handle_contribute(&request.body),
            ("GET", path) if path.starts_with("/internal/job/") => self.handle_job(path),
            ("GET", "/plan" | "/schedule" | "/report" | "/solve")
            | ("GET", "/internal/claim" | "/internal/contribute")
            | ("POST", "/healthz" | "/stats") => Response::error(
                405,
                &format!("{} does not support {}", request.path, request.method),
            ),
            _ => Response::error(404, &format!("no route for {}", request.path)),
        }
    }

    /// Resolve the deadline of one request into a [`CancelToken`]: the
    /// `X-Deadline-Ms` header wins over the body's `deadline_ms`, which wins
    /// over the server default; the server maximum caps whatever remains.
    /// `None` means the request runs unbounded.
    fn deadline_token(
        &self,
        header_ms: Option<u64>,
        body: &[u8],
    ) -> Result<Option<CancelToken>, Response> {
        let requested = match header_ms {
            Some(ms) => Some(ms),
            None => body_deadline_ms(body)?,
        };
        let requested = requested
            .map(Duration::from_millis)
            .or(self.default_deadline);
        let effective = match (requested, self.max_deadline) {
            (Some(deadline), Some(max)) => Some(deadline.min(max)),
            (Some(deadline), None) => Some(deadline),
            (None, max) => max,
        };
        Ok(effective.map(CancelToken::with_deadline))
    }

    /// Map an [`EngineError`] to a response, counting cancellations by
    /// stage on the way.
    fn engine_error(&self, error: &EngineError) -> Response {
        if let EngineError::Cancelled { stage, .. } = error {
            self.stats.count_cancelled(stage);
        }
        engine_error_response(error)
    }

    /// Parse the body as an [`EngineConfig`], recording parse latency.
    fn parse_config(&self, body: &[u8]) -> Result<EngineConfig, Response> {
        let started = Instant::now();
        let text = std::str::from_utf8(body)
            .map_err(|_| Response::error(400, "request body is not UTF-8"))?;
        let config = EngineConfig::from_json(text)
            .map_err(|e| Response::error(400, &format!("invalid config: {e}")))?;
        if let Some(recorder) = self.stats.stage("parse") {
            recorder.record(started.elapsed().as_secs_f64());
        }
        Ok(config)
    }

    /// Fetch or build the plan for `config` on behalf of `tenant`,
    /// recording plan-stage latency on misses.
    fn plan_for(
        &self,
        config: &EngineConfig,
        tenant: &str,
        cancel: Option<&CancelToken>,
    ) -> Result<(std::sync::Arc<Plan>, bool), Response> {
        let (plan, hit) = self
            .cache
            .get_or_plan_for(&self.engine, config, tenant, cancel)
            .map_err(|e| self.engine_error(&e))?;
        if !hit {
            if let Some(recorder) = self.stats.stage("plan") {
                let timings = plan.timings();
                recorder.record(
                    timings.generate_seconds + timings.ordering_seconds + timings.symbolic_seconds,
                );
            }
        }
        Ok((plan, hit))
    }

    fn handle_plan(&self, body: &[u8], header_deadline: Option<u64>, tenant: &str) -> Response {
        let cancel = match self.deadline_token(header_deadline, body) {
            Ok(token) => token,
            Err(response) => return response,
        };
        let config = match self.parse_config(body) {
            Ok(config) => config,
            Err(response) => return response,
        };
        let (plan, hit) = match self.plan_for(&config, tenant, cancel.as_ref()) {
            Ok(result) => result,
            Err(response) => return response,
        };
        let timings = plan.timings();
        let body = format!(
            "{{\n  \"schema\": \"engine_server_plan/v1\",\n  \"config_hash\": \"{}\",\n  \
             \"cache\": \"{}\",\n  \"nodes\": {},\n  \"matrix_n\": {},\n  \
             \"plan_seconds\": {:.6}\n}}\n",
            escape(plan.config_hash()),
            if hit { "hit" } else { "miss" },
            plan.tree().len(),
            plan.matrix_n(),
            timings.generate_seconds + timings.ordering_seconds + timings.symbolic_seconds
        );
        Response {
            cache_hit: Some(hit),
            config_hash: Some(plan.config_hash().to_string()),
            ..Response::ok(body)
        }
    }

    fn handle_schedule(&self, body: &[u8], header_deadline: Option<u64>, tenant: &str) -> Response {
        let cancel = match self.deadline_token(header_deadline, body) {
            Ok(token) => token,
            Err(response) => return response,
        };
        let config = match self.parse_config(body) {
            Ok(config) => config,
            Err(response) => return response,
        };
        let (plan, hit) = match self.plan_for(&config, tenant, cancel.as_ref()) {
            Ok(result) => result,
            Err(response) => return response,
        };
        let schedule =
            match plan.schedule_with_cancel(&self.engine, ScheduleSpec::default(), cancel.as_ref())
            {
                Ok(schedule) => schedule,
                Err(e) => return self.engine_error(&e),
            };
        self.record_schedule_stages(&schedule.timings(), None);
        let body = format!(
            "{{\n  \"schema\": \"engine_server_schedule/v1\",\n  \"config_hash\": \"{}\",\n  \
             \"cache\": \"{}\",\n  \"solver\": \"{}\",\n  \"policy\": \"{}\",\n  \
             \"solver_peak\": {},\n  \"memory_budget\": {},\n  \"io_volume\": {},\n  \
             \"read_volume\": {},\n  \"files_written\": {},\n  \"io_peak_memory\": {},\n  \
             \"divisible_bound\": {}\n}}\n",
            escape(schedule.config_hash()),
            if hit { "hit" } else { "miss" },
            escape(schedule.solver()),
            escape(schedule.policy()),
            schedule.peak(),
            schedule.memory_budget(),
            schedule.io_volume(),
            schedule.io_run().read_volume,
            schedule.io_run().files_written,
            schedule.io_run().peak_memory,
            schedule.divisible_bound(),
        );
        Response {
            cache_hit: Some(hit),
            config_hash: Some(schedule.config_hash().to_string()),
            ..Response::ok(body)
        }
    }

    fn handle_report(&self, body: &[u8], header_deadline: Option<u64>, tenant: &str) -> Response {
        let cancel = match self.deadline_token(header_deadline, body) {
            Ok(token) => token,
            Err(response) => return response,
        };
        let config = match self.parse_config(body) {
            Ok(config) => config,
            Err(response) => return response,
        };
        if config.distributed.enabled() {
            return self.handle_report_distributed(&config, tenant, cancel.as_ref());
        }
        let (plan, hit) = match self.plan_for(&config, tenant, cancel.as_ref()) {
            Ok(result) => result,
            Err(response) => return response,
        };
        let (report, factor) = match plan
            .schedule_with_cancel(&self.engine, ScheduleSpec::default(), cancel.as_ref())
            .and_then(|schedule| schedule.execute_with_factor_cancel(&self.engine, cancel.as_ref()))
        {
            Ok(result) => result,
            Err(e) => return self.engine_error(&e),
        };
        // Deposit the factor so later `POST /solve` requests can resolve
        // this configuration's hash without re-factorizing.  An over-quota
        // deposit is admitted-but-uncacheable: this response still carries
        // the factor's results, only later `/solve` lookups miss.
        if let Some(factor) = factor {
            self.factors
                .insert_for(&report.config_hash, tenant, Arc::new(factor));
        }
        self.record_schedule_stages(&report.timings, Some(&report));
        Response {
            cache_hit: Some(hit),
            config_hash: Some(report.config_hash.clone()),
            ..Response::ok(report.to_json())
        }
    }

    /// `POST /report` with a distributed section: plan and cut once, park
    /// the subtree tasks in the job registry for worker processes to claim,
    /// and block until every contribution is in, then merge above the cut
    /// and answer with the ordinary report document (plus its `distributed`
    /// section).  The merged factor is bit-identical to the single-process
    /// path, so it is deposited for `/solve` exactly like a local one.
    fn handle_report_distributed(
        &self,
        config: &EngineConfig,
        tenant: &str,
        cancel: Option<&CancelToken>,
    ) -> Response {
        let (plan, hit) = match self.plan_for(config, tenant, cancel) {
            Ok(result) => result,
            Err(response) => return response,
        };
        let schedule =
            match plan.schedule_with_cancel(&self.engine, ScheduleSpec::default(), cancel) {
                Ok(schedule) => schedule,
                Err(e) => return self.engine_error(&e),
            };
        let cut = match schedule.distributed_cut(&self.engine) {
            Ok(cut) => cut,
            Err(e) => return self.engine_error(&e),
        };
        let job = self.registry.register(JobSpec {
            config_json: config.to_json(),
            lease_ms: cut.lease_ms(),
            task_orders: (0..cut.task_count())
                .map(|task| cut.task_order(task).to_vec())
                .collect(),
            task_peaks: (0..cut.task_count())
                .map(|task| cut.task_peak_entries(task))
                .collect(),
            budget_entries: cut.budget_entries(),
        });
        let waited = job.wait_for_completion(None, cancel);
        // Whatever happened, the job leaves the registry: late contributions
        // answer 404 rather than piling up parts nobody will merge.
        self.registry.remove(job.id());
        let (contributions, runtime) = match waited {
            Ok(result) => result,
            Err(WaitError::Cancelled) => {
                self.stats.count_cancelled("distributed");
                return Response::error(
                    504,
                    "deadline expired while waiting for worker contributions",
                );
            }
            Err(WaitError::TimedOut) => {
                return Response::error(504, "timed out waiting for worker contributions");
            }
        };
        let (report, factor) =
            match schedule.execute_distributed(&self.engine, cut, contributions, runtime, cancel) {
                Ok(result) => result,
                Err(e) => return self.engine_error(&e),
            };
        if let Some(factor) = factor {
            self.factors
                .insert_for(&report.config_hash, tenant, Arc::new(factor));
        }
        self.record_schedule_stages(&report.timings, Some(&report));
        Response {
            cache_hit: Some(hit),
            config_hash: Some(report.config_hash.clone()),
            ..Response::ok(report.to_json())
        }
    }

    /// `POST /internal/claim`: answer one worker's poll with a leased task,
    /// a wait hint, or idle.  The body and reply are wire frames, not bare
    /// JSON (see [`distrib::wire`]).
    fn handle_claim(&self, body: &[u8]) -> Response {
        let claim = match ClaimRequest::from_frame(body) {
            Ok(claim) => claim,
            Err(e) => return Response::error(400, &format!("bad claim frame: {e}")),
        };
        let frame = self.registry.claim(&claim.worker).to_frame();
        Response::ok(distrib::frame_string(&frame))
    }

    /// `POST /internal/contribute`: absorb one task's factored columns and
    /// contribution blocks.  Frames that fail to decode are 400s; stale
    /// lease epochs and duplicate completions are 409s (the worker drops
    /// its copy — the re-issued lease recomputes identical bits).
    fn handle_contribute(&self, body: &[u8]) -> Response {
        let frame_bytes = body.len() as u64;
        let contribution = match Contribution::from_frame(body) {
            Ok(contribution) => contribution,
            Err(e) => return Response::error(400, &format!("bad contribution frame: {e}")),
        };
        let (job, task) = (contribution.job, contribution.task);
        match self.registry.contribute(contribution, frame_bytes) {
            Ok(()) => Response::ok(format!(
                "{{\"status\": \"accepted\", \"job\": {job}, \"task\": {task}}}\n"
            )),
            Err(error @ (ContributeError::UnknownJob | ContributeError::UnknownTask)) => {
                Response::error(404, &error.to_string())
            }
            Err(error) => Response::error(409, &error.to_string()),
        }
    }

    /// `GET /internal/job/{id}`: progress of one live job.
    fn handle_job(&self, path: &str) -> Response {
        let id = path
            .strip_prefix("/internal/job/")
            .and_then(|rest| rest.parse::<u64>().ok());
        let Some(id) = id else {
            return Response::error(400, "job ids are decimal integers");
        };
        match self.registry.job(id) {
            Some(job) => Response::ok(format!("{}\n", job.progress_json())),
            None => Response::error(404, &format!("no live job {id}")),
        }
    }

    /// `POST /solve`: resolve a cached factor by effective-config hash and
    /// solve a batch of right-hand sides against it.
    ///
    /// The body is a JSON object: `config_hash` (required — the
    /// `X-Config-Hash` of a previous numeric `/report`), then either
    /// `vectors` (an array of length-`n` arrays) or `count`/`seed` for
    /// generated right-hand sides, plus the flags `check_residual`
    /// (default true) and `return_solutions` (default false).  An unknown
    /// hash is a 404 with `X-Cache: miss`; a hit carries `X-Cache: hit`.
    fn handle_solve(&self, body: &[u8], header_deadline: Option<u64>, tenant: &str) -> Response {
        let cancel = match self.deadline_token(header_deadline, body) {
            Ok(token) => token,
            Err(response) => return response,
        };
        let parse_started = Instant::now();
        let Ok(text) = std::str::from_utf8(body) else {
            return Response::error(400, "request body is not UTF-8");
        };
        let json = match Json::parse(text) {
            Ok(json) => json,
            Err(e) => return Response::error(400, &format!("invalid solve request: {e}")),
        };
        let Some(config_hash) = json.get("config_hash").and_then(Json::as_str) else {
            return Response::error(
                400,
                "solve requests need a \"config_hash\" string naming a previous numeric report",
            );
        };
        let check_residual = json
            .get("check_residual")
            .and_then(Json::as_bool)
            .unwrap_or(true);
        let return_solutions = json
            .get("return_solutions")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        if let Some(recorder) = self.stats.stage("parse") {
            recorder.record(parse_started.elapsed().as_secs_f64());
        }

        let Some(factor) = self.factors.get_for(config_hash, tenant) else {
            return Response {
                cache_hit: Some(false),
                config_hash: Some(config_hash.to_string()),
                ..Response::error(
                    404,
                    &format!(
                        "no cached factor for config_hash '{config_hash}'; \
                         POST /report with \"numeric\": true first"
                    ),
                )
            };
        };
        let n = factor.n();

        let mut batch: Vec<f64>;
        if let Some(vectors) = json.get("vectors") {
            let Some(vectors) = vectors.as_array() else {
                return Response::error(400, "\"vectors\" must be an array of number arrays");
            };
            if vectors.is_empty() || vectors.len() > MAX_SOLVE_RHS {
                return Response::error(
                    400,
                    &format!(
                        "between 1 and {MAX_SOLVE_RHS} right-hand sides are supported, got {}",
                        vectors.len()
                    ),
                );
            }
            batch = Vec::with_capacity(n * vectors.len());
            for vector in vectors {
                let Some(entries) = vector.as_array() else {
                    return Response::error(400, "\"vectors\" must be an array of number arrays");
                };
                if entries.len() != n {
                    return Response::error(
                        400,
                        &format!(
                            "right-hand side length {} does not match the problem dimension {n}",
                            entries.len()
                        ),
                    );
                }
                for entry in entries {
                    match entry.as_f64() {
                        Some(value) if value.is_finite() => batch.push(value),
                        _ => {
                            return Response::error(400, "right-hand sides must be finite numbers")
                        }
                    }
                }
            }
        } else {
            let count = json.get("count").and_then(Json::as_usize).unwrap_or(1);
            let seed = json.get("seed").and_then(Json::as_u64).unwrap_or(1);
            if count == 0 || count > MAX_SOLVE_RHS {
                return Response::error(
                    400,
                    &format!(
                        "between 1 and {MAX_SOLVE_RHS} right-hand sides are supported, got {count}"
                    ),
                );
            }
            batch = factor.generated_rhs(count, seed);
        }
        let rhs_count = batch.len() / n.max(1);

        // The batched solve is short and uninterruptible, so the deadline is
        // enforced at its threshold: an already-expired token turns into a
        // 504 here instead of starting the triangular sweeps.
        if let Some(token) = &cancel {
            if token.is_cancelled() {
                return self.engine_error(&EngineError::Cancelled {
                    stage: "solve",
                    elapsed: token.elapsed(),
                });
            }
        }

        let solve_started = Instant::now();
        let original = check_residual.then(|| batch.clone());
        if let Err(e) = factor.solve_batch(&mut batch) {
            return self.engine_error(&e);
        }
        let max_residual = original.map(|rhs| factor.max_residual(&rhs, &batch));
        let solve_seconds = solve_started.elapsed().as_secs_f64();
        if let Some(recorder) = self.stats.stage("solve") {
            recorder.record(solve_seconds);
        }

        let mut body = format!(
            "{{\n  \"schema\": \"engine_server_solve/v1\",\n  \"config_hash\": \"{}\",\n  \
             \"cache\": \"hit\",\n  \"n\": {n},\n  \"rhs_count\": {rhs_count},\n  \
             \"factor_nnz\": {},\n  \"solve_seconds\": {:.6},\n  \"max_residual\": {}",
            escape(config_hash),
            factor.factor_nnz(),
            solve_seconds,
            match max_residual {
                Some(value) if value.is_finite() => format!("{value:e}"),
                _ => "null".to_string(),
            },
        );
        if return_solutions {
            body.push_str(",\n  \"solutions\": [");
            for (index, column) in batch.chunks_exact(n).enumerate() {
                if index > 0 {
                    body.push_str(", ");
                }
                body.push('[');
                for (position, value) in column.iter().enumerate() {
                    if position > 0 {
                        body.push_str(", ");
                    }
                    if value.is_finite() {
                        body.push_str(&format!("{value:e}"));
                    } else {
                        body.push_str("null");
                    }
                }
                body.push(']');
            }
            body.push(']');
        }
        body.push_str("\n}\n");
        Response {
            cache_hit: Some(true),
            config_hash: Some(config_hash.to_string()),
            ..Response::ok(body)
        }
    }

    fn record_schedule_stages(&self, timings: &StageTimings, report: Option<&Report>) {
        if let Some(recorder) = self.stats.stage("solver") {
            recorder.record(timings.solver_seconds);
        }
        if let Some(recorder) = self.stats.stage("io") {
            recorder.record(timings.io_seconds);
        }
        if let Some(report) = report {
            if report.numeric.is_some() {
                if let Some(recorder) = self.stats.stage("numeric") {
                    recorder.record(timings.numeric_seconds);
                }
            }
            if report.solve.is_some() {
                if let Some(recorder) = self.stats.stage("solve") {
                    recorder.record(timings.solve_seconds);
                }
            }
        }
    }
}

/// Longest accepted `X-Tenant` value.
const MAX_TENANT_LEN: usize = 64;

/// Resolve the requesting tenant from the `X-Tenant` header: absent means
/// the shared [`engine::DEFAULT_TENANT`] pool; present values must be
/// short identifier-like tokens (letters, digits, `-`, `_`, `.`) so they
/// stay safe as JSON keys and log fields.
fn request_tenant(request: &Request) -> Result<String, Response> {
    match request.header("x-tenant") {
        None => Ok(engine::DEFAULT_TENANT.to_string()),
        Some(value) => {
            let valid = !value.is_empty()
                && value.len() <= MAX_TENANT_LEN
                && value
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
            if valid {
                Ok(value.to_string())
            } else {
                Err(Response::error(
                    400,
                    &format!(
                        "X-Tenant must be 1..={MAX_TENANT_LEN} characters of \
                         [A-Za-z0-9._-]"
                    ),
                ))
            }
        }
    }
}

/// Parse the `X-Deadline-Ms` request header, if present.
fn header_deadline_ms(request: &Request) -> Result<Option<u64>, Response> {
    match request.header("x-deadline-ms") {
        None => Ok(None),
        Some(value) => match value.parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(Some(ms)),
            _ => Err(Response::error(
                400,
                "X-Deadline-Ms must be a positive integer of milliseconds",
            )),
        },
    }
}

/// Extract the optional top-level `deadline_ms` of a JSON request body.
/// Bodies that are not valid JSON pass through as `None` — the handler's
/// own parser produces the precise 400 for those.
fn body_deadline_ms(body: &[u8]) -> Result<Option<u64>, Response> {
    let Ok(text) = std::str::from_utf8(body) else {
        return Ok(None);
    };
    // Cheap substring guard so well-formed bodies without a deadline are
    // not parsed twice.
    if !text.contains("\"deadline_ms\"") {
        return Ok(None);
    }
    let Ok(json) = Json::parse(text) else {
        return Ok(None);
    };
    match json.get("deadline_ms") {
        None => Ok(None),
        Some(value) => match value.as_u64() {
            Some(ms) if ms > 0 => Ok(Some(ms)),
            _ => Err(Response::error(
                400,
                "\"deadline_ms\" must be a positive integer of milliseconds",
            )),
        },
    }
}

/// Map an [`EngineError`] to a response: everything the client caused is a
/// 4xx, deadline expiries are 504, infrastructure faults are 500.
fn engine_error_response(error: &EngineError) -> Response {
    let status = match error {
        EngineError::UnknownName(_)
        | EngineError::InvalidConfig(_)
        | EngineError::MatrixMarket(_)
        | EngineError::NumericUnavailable => 400,
        // A structurally valid request whose simulation is infeasible
        // (e.g. a budget below the largest node requirement).
        EngineError::MinIo(_) => 422,
        EngineError::Cancelled { .. } => 504,
        EngineError::Io(_) | EngineError::Factorization(_) | EngineError::Internal(_) => 500,
    };
    Response::error(status, &error.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::json::Json;

    fn service() -> Service {
        Service::new(PlanCache::new(8, None), FactorCache::new(4), 2)
    }

    fn post(service: &Service, path: &str, body: &str) -> Response {
        post_with_headers(service, path, &[], body)
    }

    fn post_with_headers(
        service: &Service,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> Response {
        service.handle_request(&Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: headers
                .iter()
                .map(|(name, value)| (name.to_string(), value.to_string()))
                .collect(),
            body: body.as_bytes().to_vec(),
        })
    }

    fn get(service: &Service, path: &str) -> Response {
        service.handle_request(&Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        })
    }

    fn sample_config() -> String {
        EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 100, 7)
            .with_memory(MemoryBudget::FractionOfPeak(0.5))
            .to_json()
    }

    #[test]
    fn healthz_and_stats_respond() {
        let service = service();
        assert_eq!(get(&service, "/healthz").status, 200);
        let stats = get(&service, "/stats");
        assert_eq!(stats.status, 200);
        assert!(Json::parse(&stats.body).is_ok());
    }

    #[test]
    fn unknown_routes_and_methods() {
        let service = service();
        assert_eq!(get(&service, "/nope").status, 404);
        assert_eq!(get(&service, "/plan").status, 405);
        assert_eq!(post(&service, "/healthz", "").status, 405);
    }

    #[test]
    fn plan_twice_hits_the_cache() {
        let service = service();
        let config = sample_config();
        let first = post(&service, "/plan", &config);
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(first.cache_hit, Some(false));
        let second = post(&service, "/plan", &config);
        assert_eq!(second.cache_hit, Some(true));
        assert_eq!(first.config_hash, second.config_hash);
        let parsed = Json::parse(&second.body).unwrap();
        assert_eq!(parsed.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn report_is_identical_on_hit_and_miss_up_to_timings() {
        let service = service();
        let config = sample_config();
        let cold = post(&service, "/report", &config);
        let hot = post(&service, "/report", &config);
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!((cold.cache_hit, hot.cache_hit), (Some(false), Some(true)));
        assert!(crate::client::report_identity(&cold.body).is_some());
        assert_eq!(
            crate::client::report_identity(&cold.body),
            crate::client::report_identity(&hot.body)
        );
    }

    #[test]
    fn schedule_records_real_stage_latencies() {
        let service = service();
        let response = post(&service, "/schedule", &sample_config());
        assert_eq!(response.status, 200, "{}", response.body);
        // The solver and I/O stages actually ran, so their recorded
        // latencies are real measurements, not zeros.
        for stage in ["solver", "io"] {
            let summary = service.stats().stage(stage).unwrap().summary();
            assert_eq!(summary.count, 1, "{stage}");
            assert!(summary.max_seconds > 0.0, "{stage} recorded 0.0");
        }
    }

    #[test]
    fn schedule_reports_io_numbers() {
        let service = service();
        let response = post(&service, "/schedule", &sample_config());
        assert_eq!(response.status, 200, "{}", response.body);
        let json = Json::parse(&response.body).unwrap();
        assert!(json.get("io_volume").and_then(Json::as_u64).is_some());
        assert!(json.get("divisible_bound").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn malformed_bodies_are_400s() {
        let service = service();
        let depth_bomb = "[".repeat(100_000);
        for body in [
            "",
            "not json",
            "{}",
            depth_bomb.as_str(),
            "{\"source\": \"\u{1}\"}", // raw control char
            r#"{"source": {"type": "generated", "kind": "nope"}}"#,
        ] {
            let response = post(&service, "/report", body);
            let label = &body[..body.len().min(30)];
            assert_eq!(response.status, 400, "{label:?} -> {}", response.body);
            assert!(Json::parse(&response.body).is_ok());
        }
        // Unknown registry names are 400s too.
        let bad = EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 50, 1)
            .with_solver("no-such-solver")
            .to_json();
        assert_eq!(post(&service, "/report", &bad).status, 400);
    }

    #[test]
    fn parallel_requests_flow_through_the_existing_endpoints() {
        let service = service();
        let serial =
            EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 100, 7).with_numeric(true);
        let parallel = serial
            .clone()
            .with_parallel(engine::ParallelConfig::with_workers(2).with_max_tasks(8));

        // The serial and parallel configurations are distinct cache entries
        // (distinct effective-config hashes), so a cached serial plan is
        // never served for a parallel request.
        let cold_serial = post(&service, "/report", &serial.to_json());
        assert_eq!(cold_serial.status, 200, "{}", cold_serial.body);
        let cold_parallel = post(&service, "/report", &parallel.to_json());
        assert_eq!(cold_parallel.status, 200, "{}", cold_parallel.body);
        assert_eq!(cold_parallel.cache_hit, Some(false));
        assert_ne!(cold_serial.config_hash, cold_parallel.config_hash);

        // The report carries the parallel section with real measurements.
        let json = Json::parse(&cold_parallel.body).unwrap();
        let section = json.get("parallel").expect("parallel section present");
        assert_eq!(section.get("workers").and_then(Json::as_usize), Some(2));
        assert!(section
            .get("subtree_count")
            .and_then(Json::as_usize)
            .is_some_and(|count| count >= 1));
        // The serial report keeps a null parallel section.
        let serial_json = Json::parse(&cold_serial.body).unwrap();
        assert!(matches!(
            serial_json.get("parallel"),
            Some(Json::Null) | None
        ));

        // A repeat of the parallel request hits its own cache entry.
        let hot = post(&service, "/report", &parallel.to_json());
        assert_eq!(hot.cache_hit, Some(true));
        assert_eq!(hot.config_hash, cold_parallel.config_hash);

        // Parallel execution without the numeric stage is a client error.
        let invalid = serial
            .clone()
            .with_numeric(false)
            .with_parallel(engine::ParallelConfig::with_workers(2));
        assert_eq!(post(&service, "/report", &invalid.to_json()).status, 400);
    }

    /// Run a numeric `/report` and return its config hash (the `/solve`
    /// key).
    fn factored_hash(service: &Service) -> String {
        let config = EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 100, 7)
            .with_numeric(true)
            .to_json();
        let response = post(service, "/report", &config);
        assert_eq!(response.status, 200, "{}", response.body);
        response.config_hash.expect("report carries its hash")
    }

    #[test]
    fn solve_resolves_a_cached_factor() {
        let service = service();
        let hash = factored_hash(&service);
        let body = format!("{{\"config_hash\": \"{hash}\", \"count\": 3, \"seed\": 9}}");
        let response = post(&service, "/solve", &body);
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.cache_hit, Some(true));
        assert_eq!(response.config_hash, Some(hash.clone()));
        let json = Json::parse(&response.body).unwrap();
        assert_eq!(json.get("rhs_count").and_then(Json::as_usize), Some(3));
        let residual = json
            .get("max_residual")
            .and_then(Json::as_f64)
            .expect("residual checked by default");
        assert!(residual < 1e-8, "{residual}");
        assert!(json.get("solutions").is_none(), "not requested");
        // The solve stage latency was recorded.
        assert_eq!(service.stats().stage("solve").unwrap().summary().count, 1);
        assert_eq!(service.factor_cache_stats().hits, 1);
    }

    #[test]
    fn solve_returns_solutions_for_explicit_vectors() {
        let service = service();
        let hash = factored_hash(&service);
        let rhs: Vec<String> = (0..100).map(|i| format!("{}.0", i % 5)).collect();
        let body = format!(
            "{{\"config_hash\": \"{hash}\", \"vectors\": [[{}]], \"return_solutions\": true}}",
            rhs.join(", ")
        );
        let response = post(&service, "/solve", &body);
        assert_eq!(response.status, 200, "{}", response.body);
        let json = Json::parse(&response.body).unwrap();
        let solutions = json.get("solutions").and_then(Json::as_array).unwrap();
        assert_eq!(solutions.len(), 1);
        assert_eq!(solutions[0].as_array().unwrap().len(), 100);
        assert!(json.get("max_residual").and_then(Json::as_f64).unwrap() < 1e-8);
    }

    #[test]
    fn unknown_hashes_are_404s_with_a_miss_disposition() {
        let service = service();
        let response = post(&service, "/solve", "{\"config_hash\": \"deadbeef\"}");
        assert_eq!(response.status, 404, "{}", response.body);
        assert_eq!(response.cache_hit, Some(false));
        assert!(Json::parse(&response.body).is_ok());
        assert_eq!(service.factor_cache_stats().misses, 1);
    }

    #[test]
    fn malformed_solve_requests_are_400s() {
        let service = service();
        let hash = factored_hash(&service);
        let wrong_length = format!("{{\"config_hash\": \"{hash}\", \"vectors\": [[1.0, 2.0]]}}");
        let not_numbers = format!("{{\"config_hash\": \"{hash}\", \"vectors\": [\"x\"]}}");
        let empty_vectors = format!("{{\"config_hash\": \"{hash}\", \"vectors\": []}}");
        let zero_count = format!("{{\"config_hash\": \"{hash}\", \"count\": 0}}");
        let huge_count = format!("{{\"config_hash\": \"{hash}\", \"count\": 1000000}}");
        for body in [
            "",                     // not JSON at all
            "not json",             // ditto
            "{}",                   // no config_hash
            "{\"config_hash\": 7}", // hash is not a string
            wrong_length.as_str(),  // RHS length mismatch
            not_numbers.as_str(),   // RHS entries are not arrays
            empty_vectors.as_str(), // zero right-hand sides
            zero_count.as_str(),    // ditto, generated
            huge_count.as_str(),    // over the batch cap
        ] {
            let response = post(&service, "/solve", body);
            let label = &body[..body.len().min(40)];
            assert_eq!(response.status, 400, "{label:?} -> {}", response.body);
            assert!(Json::parse(&response.body).is_ok());
        }
        // Wrong method.
        assert_eq!(get(&service, "/solve").status, 405);
        // The factor survives the barrage.
        let good = format!("{{\"config_hash\": \"{hash}\"}}");
        assert_eq!(post(&service, "/solve", &good).status, 200);
    }

    #[test]
    fn reports_without_the_numeric_stage_deposit_no_factor() {
        let service = service();
        let config = sample_config(); // numeric disabled
        let response = post(&service, "/report", &config);
        assert_eq!(response.status, 200, "{}", response.body);
        let hash = response.config_hash.unwrap();
        let body = format!("{{\"config_hash\": \"{hash}\"}}");
        assert_eq!(post(&service, "/solve", &body).status, 404);
    }

    #[test]
    fn solve_enabled_reports_carry_the_solve_section() {
        let service = service();
        let config = EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 100, 7)
            .with_numeric(true)
            .with_solve(engine::SolveConfig::generated(2, 5))
            .to_json();
        let response = post(&service, "/report", &config);
        assert_eq!(response.status, 200, "{}", response.body);
        let json = Json::parse(&response.body).unwrap();
        let solve = json.get("solve").expect("solve section present");
        assert_eq!(solve.get("rhs_count").and_then(Json::as_usize), Some(2));
        assert!(solve.get("max_residual").and_then(Json::as_f64).unwrap() < 1e-8);
        assert_eq!(service.stats().stage("solve").unwrap().summary().count, 1);
    }

    /// A configuration whose ordering stage is long enough that a
    /// 1-millisecond deadline always fires mid-plan.
    fn slow_config() -> String {
        EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 10_000, 7).to_json()
    }

    #[test]
    fn an_expired_header_deadline_is_a_504_and_counted() {
        let service = service();
        let response = post_with_headers(
            &service,
            "/report",
            &[("x-deadline-ms", "1")],
            &slow_config(),
        );
        assert_eq!(response.status, 504, "{}", response.body);
        assert!(Json::parse(&response.body).is_ok());
        assert!(service.stats().cancelled_total() >= 1);
        // The cancelled counters surface in /stats.
        let stats = get(&service, "/stats");
        let json = Json::parse(&stats.body).unwrap();
        assert!(json
            .get("cancelled")
            .and_then(|c| c.get("total"))
            .and_then(Json::as_u64)
            .is_some_and(|total| total >= 1));
        // The key settled: the same config planned without a deadline works.
        let retry = post(&service, "/report", &slow_config());
        assert_eq!(retry.status, 200, "{}", retry.body);
    }

    #[test]
    fn a_body_deadline_cancels_too() {
        let service = service();
        let config = slow_config();
        let with_deadline = format!("{{\"deadline_ms\": 1, {}", &config[1..]);
        let response = post(&service, "/schedule", &with_deadline);
        assert_eq!(response.status, 504, "{}", response.body);
    }

    #[test]
    fn invalid_deadlines_are_400s() {
        let service = service();
        for value in ["soon", "-5", "0", "1.5"] {
            let response = post_with_headers(
                &service,
                "/plan",
                &[("x-deadline-ms", value)],
                &sample_config(),
            );
            assert_eq!(response.status, 400, "{value:?} -> {}", response.body);
        }
        let bad_body = format!("{{\"deadline_ms\": 0, {}", &sample_config()[1..]);
        assert_eq!(post(&service, "/plan", &bad_body).status, 400);
    }

    #[test]
    fn server_side_default_and_maximum_deadlines_apply() {
        let defaulted = Service::new(PlanCache::new(8, None), FactorCache::new(4), 2)
            .with_deadlines(Some(Duration::from_millis(1)), None);
        let response = post(&defaulted, "/plan", &slow_config());
        assert_eq!(response.status, 504, "{}", response.body);

        // The maximum caps a generous requested deadline down to 1 ms and
        // bounds requests that asked for none.
        let capped = Service::new(PlanCache::new(8, None), FactorCache::new(4), 2)
            .with_deadlines(None, Some(Duration::from_millis(1)));
        let response = post_with_headers(
            &capped,
            "/plan",
            &[("x-deadline-ms", "60000")],
            &slow_config(),
        );
        assert_eq!(response.status, 504, "{}", response.body);
        assert_eq!(post(&capped, "/plan", &slow_config()).status, 504);

        // Small problems still finish inside the same ceiling-free default.
        let roomy = Service::new(PlanCache::new(8, None), FactorCache::new(4), 2)
            .with_deadlines(Some(Duration::from_secs(600)), None);
        assert_eq!(post(&roomy, "/plan", &sample_config()).status, 200);
    }

    #[test]
    fn an_expired_deadline_turns_solve_requests_into_504s() {
        let service = service();
        let hash = factored_hash(&service);
        let body = format!("{{\"config_hash\": \"{hash}\", \"deadline_ms\": 1, \"count\": 1}}");
        // Burn past the deadline deterministically: the token is created at
        // routing time, so an artificial delay is not needed — instead use a
        // service whose maximum deadline is tiny and a header that is valid
        // but already unreachable.  A 1 ms deadline may or may not expire
        // before the pre-solve check, so accept either a fast 200 or a 504;
        // what must never happen is a 5xx or a panic.
        let response = post(&service, "/solve", &body);
        assert!(
            response.status == 200 || response.status == 504,
            "{} -> {}",
            response.status,
            response.body
        );
    }

    #[test]
    fn infeasible_budgets_are_422s() {
        let config = EngineConfig::prebuilt(treemem::gadgets::harpoon(3, 300, 1))
            .with_memory(MemoryBudget::Absolute(1));
        let service = service();
        let response = post(&service, "/schedule", &config.to_json());
        assert_eq!(response.status, 422, "{}", response.body);
    }

    // ---- distributed execution over the internal endpoints ----

    use crate::worker::{run_worker, InProcessTransport, WorkerOptions};
    use distrib::ClaimReply;

    /// Block until the coordinator has registered `count` jobs (a
    /// distributed `/report` is in flight on another thread).
    fn wait_for_jobs(service: &Service, count: u64) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while service.registry().stats().snapshot().jobs_started < count {
            assert!(Instant::now() < deadline, "no job appeared within 30s");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// The text from the `"solutions"` key onward: value-for-value equal
    /// formatting implies bit-identical solution vectors.
    fn solutions_text(body: &str) -> &str {
        body.split("\"solutions\"")
            .nth(1)
            .expect("solutions present")
    }

    #[test]
    fn distributed_reports_merge_bit_identically_to_local_runs() {
        let service = Arc::new(service());
        let local = EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 900, 7)
            .with_numeric(true)
            .with_solve(engine::SolveConfig::generated(2, 5));
        let sharded = local
            .clone()
            .with_distributed(engine::DistributedConfig::with_tasks(4));

        // The distributed report blocks until workers contribute, so it
        // runs on its own thread (bounded by a body deadline, in case the
        // protocol wedges).
        let body = format!("{{\"deadline_ms\": 60000, {}", &sharded.to_json()[1..]);
        let coordinator = Arc::clone(&service);
        let report = std::thread::spawn(move || post(&coordinator, "/report", &body));
        wait_for_jobs(&service, 1);

        // One in-process worker drains the job through the real endpoints.
        let transport = InProcessTransport(Arc::clone(&service));
        let summary = run_worker(&transport, &WorkerOptions::named("w-0").exit_when_idle(3));
        let response = report.join().expect("report thread");
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(summary.tasks_completed, 4);
        assert_eq!(summary.transport_errors, 0);

        let json = Json::parse(&response.body).unwrap();
        let section = json.get("distributed").expect("distributed section");
        assert_eq!(section.get("workers").and_then(Json::as_usize), Some(1));
        assert_eq!(
            section.get("subtree_count").and_then(Json::as_usize),
            Some(4)
        );
        assert_eq!(
            section.get("lease_expiries").and_then(Json::as_u64),
            Some(0)
        );

        // The merged factor answers /solve bit-for-bit like the local one.
        let reference = post(&service, "/report", &local.to_json());
        assert_eq!(reference.status, 200, "{}", reference.body);
        let sharded_hash = response.config_hash.expect("distributed hash");
        let local_hash = reference.config_hash.expect("local hash");
        assert_ne!(sharded_hash, local_hash, "distinct cache identities");
        let rhs: Vec<String> = (0..900).map(|i| format!("{}.5", i % 7)).collect();
        let solve_body = |hash: &str| {
            format!(
                "{{\"config_hash\": \"{hash}\", \"vectors\": [[{}]], \
                 \"return_solutions\": true}}",
                rhs.join(", ")
            )
        };
        let merged = post(&service, "/solve", &solve_body(&sharded_hash));
        let reference = post(&service, "/solve", &solve_body(&local_hash));
        assert_eq!(merged.status, 200, "{}", merged.body);
        assert_eq!(reference.status, 200, "{}", reference.body);
        assert_eq!(
            solutions_text(&merged.body),
            solutions_text(&reference.body),
            "distributed solve diverged from the local factor"
        );

        // Satellite invariant: the cluster counters reconcile to the task
        // count, and /stats carries them.
        let snapshot = service.registry().stats().snapshot();
        assert_eq!(snapshot.tasks_completed, 4);
        assert_eq!(
            snapshot.tasks_claimed,
            snapshot.tasks_completed + snapshot.lease_expiries
        );
        assert_eq!(snapshot.jobs_completed, snapshot.jobs_started);
        let stats = Json::parse(&get(&service, "/stats").body).unwrap();
        let cluster = stats.get("cluster").expect("cluster section");
        assert_eq!(
            cluster.get("tasks_completed").and_then(Json::as_u64),
            Some(snapshot.tasks_completed)
        );
        assert_eq!(
            cluster
                .get("workers")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn expired_leases_reissue_tasks_and_fence_late_contributions_with_409() {
        let service = Arc::new(service());
        let config = EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2d, 400, 3)
            .with_numeric(true)
            .with_distributed(engine::DistributedConfig::with_tasks(2).with_lease_ms(500));
        let body = format!("{{\"deadline_ms\": 60000, {}", &config.to_json()[1..]);
        let coordinator = Arc::clone(&service);
        let report = std::thread::spawn(move || post(&coordinator, "/report", &body));
        wait_for_jobs(&service, 1);

        // A slow worker claims a task over the real endpoint, computes it,
        // but only contributes after its lease expired.
        let claim = distrib::ClaimRequest {
            worker: "w-slow".to_string(),
        }
        .to_frame();
        let claimed = post(
            &service,
            "/internal/claim",
            std::str::from_utf8(&claim).unwrap(),
        );
        assert_eq!(claimed.status, 200, "{}", claimed.body);
        let task = match ClaimReply::from_frame(claimed.body.as_bytes()).unwrap() {
            ClaimReply::Task(task) => task,
            other => panic!("expected a task, got {other:?}"),
        };
        let engine = Engine::new();
        let late_config = EngineConfig::from_json(&task.config).unwrap();
        let plan = engine.plan(&late_config).unwrap();
        let parts = plan.factor_subtree(&task.order, None).unwrap();
        let late =
            distrib::contribution_frame(task.job, task.task, task.epoch, "w-slow", 0.1, &parts);
        let late = String::from_utf8(late).unwrap();
        std::thread::sleep(Duration::from_millis(800));
        let rejected = post(&service, "/internal/contribute", &late);
        assert_eq!(rejected.status, 409, "{}", rejected.body);

        // A healthy worker completes the job via re-issue...
        let transport = InProcessTransport(Arc::clone(&service));
        let summary = run_worker(
            &transport,
            &WorkerOptions::named("w-alive").exit_when_idle(3),
        );
        let response = report.join().expect("report thread");
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(summary.stale_rejections, 0);
        let json = Json::parse(&response.body).unwrap();
        let section = json.get("distributed").expect("distributed section");
        assert!(section
            .get("lease_expiries")
            .and_then(Json::as_u64)
            .is_some_and(|expiries| expiries >= 1));
        assert!(section
            .get("tasks_requeued")
            .and_then(Json::as_u64)
            .is_some_and(|requeued| requeued >= 1));

        // ...after which the job is gone: the same late frame is now a 404.
        assert_eq!(post(&service, "/internal/contribute", &late).status, 404);
        let snapshot = service.registry().stats().snapshot();
        assert!(snapshot.stale_contributions >= 1);
        assert_eq!(
            snapshot.tasks_claimed,
            snapshot.tasks_completed + snapshot.lease_expiries
        );
    }

    #[test]
    fn internal_endpoints_reject_garbage_and_unknown_jobs_cleanly() {
        let service = service();
        // Claim and contribute frames that fail to decode are 400s.
        for body in ["", "not a frame", "distrib_wire/v1 4\nhuge"] {
            assert_eq!(post(&service, "/internal/claim", body).status, 400);
            assert_eq!(post(&service, "/internal/contribute", body).status, 400);
        }
        // An idle coordinator answers claims with an idle frame.
        let claim = distrib::ClaimRequest {
            worker: "w".to_string(),
        }
        .to_frame();
        let reply = post(
            &service,
            "/internal/claim",
            std::str::from_utf8(&claim).unwrap(),
        );
        assert_eq!(reply.status, 200);
        assert!(matches!(
            ClaimReply::from_frame(reply.body.as_bytes()),
            Ok(ClaimReply::Idle)
        ));
        // Unknown and malformed job ids.
        assert_eq!(get(&service, "/internal/job/99").status, 404);
        assert_eq!(get(&service, "/internal/job/xyz").status, 400);
        // Wrong methods.
        assert_eq!(get(&service, "/internal/claim").status, 405);
        assert_eq!(get(&service, "/internal/contribute").status, 405);
    }
}
