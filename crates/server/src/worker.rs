//! The worker-process side of distributed execution: poll the coordinator's
//! `POST /internal/claim`, factor the leased subtree with the blocked
//! kernel, and stream the contribution frame back through
//! `POST /internal/contribute`.
//!
//! The loop is deliberately stateless across tasks apart from a tiny plan
//! cache: every task frame carries the full engine configuration, so a
//! worker that joins (or rejoins) mid-job re-derives the same matrix and
//! symbolic structure and produces bit-identical columns.  A worker that
//! dies simply stops contributing — its lease expires on the coordinator
//! and the task is re-issued, so no worker-side cleanup protocol exists.
//!
//! Between claiming a task and factoring it the loop fires the
//! `parexec:task` fault point — the same point the in-process parallel
//! executor fires — so one `TREEMEM_FAULT_PLAN` spec can chaos-test both
//! execution paths: a `drop` rule makes the worker silently abandon the
//! lease (a simulated crash), a `sleep` rule stalls it past the lease
//! deadline.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use distrib::{contribution_frame, frame_string, ClaimReply, ClaimRequest};
use engine::faultinject::FaultSignal;
use engine::{Engine, PlanCache};

use crate::http::Request;
use crate::service::Service;

/// How a worker reaches its coordinator.  Production workers dial HTTP
/// ([`HttpTransport`]); in-process tests drive a [`Service`] directly
/// ([`InProcessTransport`]).
pub trait Transport {
    /// `POST` one wire frame (frames are ASCII, hence `&str`) to `path`;
    /// returns `(status, body)`.
    fn post(&self, path: &str, frame: &str) -> Result<(u16, String), String>;
}

/// Blocking HTTP transport.  Posts retry with jittered backoff, so a worker
/// started before its coordinator finishes booting keeps dialing through
/// the connection-refused window instead of dying.
pub struct HttpTransport {
    addr: SocketAddr,
    attempts: usize,
}

impl HttpTransport {
    /// A transport dialing `addr`, retrying each post up to 12 times
    /// (with exponential backoff that is more than enough to cover a
    /// coordinator boot).
    pub fn new(addr: SocketAddr) -> HttpTransport {
        HttpTransport { addr, attempts: 12 }
    }
}

impl Transport for HttpTransport {
    fn post(&self, path: &str, frame: &str) -> Result<(u16, String), String> {
        crate::client::post_with_retry(
            self.addr,
            path,
            frame,
            self.attempts,
            Duration::from_secs(2),
        )
        .map(|response| (response.status, response.body))
        .map_err(|error| error.to_string())
    }
}

/// Socket-free transport calling [`Service::handle_request`] directly; the
/// integration seam for single-process tests of the whole protocol.
pub struct InProcessTransport(pub Arc<Service>);

impl Transport for InProcessTransport {
    fn post(&self, path: &str, frame: &str) -> Result<(u16, String), String> {
        let response = self.0.handle_request(&Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: frame.as_bytes().to_vec(),
        });
        Ok((response.status, response.body))
    }
}

/// Tuning of one worker loop.
pub struct WorkerOptions {
    /// Identity sent with every claim (the coordinator's roster key).
    pub worker_id: String,
    /// Exit after this many *consecutive* idle polls (or unreachable-
    /// coordinator errors); `None` runs forever — the `serve --role worker`
    /// setting.
    pub exit_after_idle_polls: Option<u32>,
    /// Sleep between idle polls and after transport errors.
    pub idle_poll: Duration,
}

impl WorkerOptions {
    /// A long-lived worker named `worker_id`.
    pub fn named(worker_id: &str) -> WorkerOptions {
        WorkerOptions {
            worker_id: worker_id.to_string(),
            exit_after_idle_polls: None,
            idle_poll: Duration::from_millis(50),
        }
    }

    /// Exit once `polls` consecutive claim polls answer idle (test and
    /// batch mode).
    pub fn exit_when_idle(mut self, polls: u32) -> WorkerOptions {
        self.exit_after_idle_polls = Some(polls);
        self
    }
}

/// What one worker loop did before exiting; returned only by bounded
/// (`exit_after_idle_polls`) runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Contributions accepted by the coordinator.
    pub tasks_completed: u64,
    /// Contributions rejected as stale (the lease expired and the task was
    /// re-issued while this worker computed).
    pub stale_rejections: u64,
    /// Tasks abandoned by an injected `drop` fault (simulated crashes).
    pub tasks_dropped: u64,
    /// Tasks whose local factorization failed (lease left to expire).
    pub factor_errors: u64,
    /// Claim or contribute exchanges that failed in transport or decode.
    pub transport_errors: u64,
}

/// Run the claim → factor → contribute loop until the exit policy in
/// `options` fires.  Panics injected via the fault plan propagate (a real
/// worker death); everything else is counted and survived.
pub fn run_worker(transport: &dyn Transport, options: &WorkerOptions) -> WorkerSummary {
    let engine = Engine::new();
    // Two entries: the common case is every task of the current job sharing
    // one configuration, with one slot of slack for back-to-back jobs.
    let plans = PlanCache::new(2, None);
    let mut summary = WorkerSummary::default();
    let mut idle_streak = 0u32;
    loop {
        if let Some(limit) = options.exit_after_idle_polls {
            if idle_streak >= limit {
                return summary;
            }
        }
        let claim = ClaimRequest {
            worker: options.worker_id.clone(),
        }
        .to_frame();
        let claim = frame_string(&claim);
        let reply = match transport.post("/internal/claim", &claim) {
            Ok((200, body)) => match ClaimReply::from_frame(body.as_bytes()) {
                Ok(reply) => reply,
                Err(_) => {
                    summary.transport_errors += 1;
                    idle_streak += 1;
                    std::thread::sleep(options.idle_poll);
                    continue;
                }
            },
            Ok((_, _)) | Err(_) => {
                summary.transport_errors += 1;
                idle_streak += 1;
                std::thread::sleep(options.idle_poll);
                continue;
            }
        };
        let task = match reply {
            ClaimReply::Idle => {
                idle_streak += 1;
                std::thread::sleep(options.idle_poll);
                continue;
            }
            ClaimReply::Wait { retry_ms } => {
                idle_streak = 0;
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(1, 1_000)));
                continue;
            }
            ClaimReply::Task(task) => {
                idle_streak = 0;
                task
            }
        };

        // Chaos seam: `drop` abandons the lease (the coordinator re-issues
        // it after the deadline), `sleep` stalls past it, `panic` kills the
        // worker like a real crash would.
        if matches!(engine::faultinject::fire("parexec:task"), FaultSignal::Drop) {
            summary.tasks_dropped += 1;
            continue;
        }

        let busy = Instant::now();
        let parts = engine::EngineConfig::from_json(&task.config)
            .map_err(|error| error.to_string())
            .and_then(|config| {
                plans
                    .get_or_plan_with_cancel(&engine, &config, None)
                    .map_err(|error| error.to_string())
            })
            .and_then(|(plan, _)| {
                plan.factor_subtree(&task.order, None)
                    .map_err(|error| error.to_string())
            });
        let parts = match parts {
            Ok(parts) => parts,
            Err(_) => {
                // Contribute nothing: the lease expires and the task is
                // re-issued, possibly to a healthier worker.
                summary.factor_errors += 1;
                continue;
            }
        };
        let frame = contribution_frame(
            task.job,
            task.task,
            task.epoch,
            &options.worker_id,
            busy.elapsed().as_secs_f64(),
            &parts,
        );
        let frame = frame_string(&frame);
        match transport.post("/internal/contribute", &frame) {
            Ok((200, _)) => summary.tasks_completed += 1,
            Ok((409, _)) => summary.stale_rejections += 1,
            Ok((_, _)) | Err(_) => summary.transport_errors += 1,
        }
    }
}
