//! Serving-side observability: request counters and bounded latency
//! recorders, summarised for the `/stats` endpoint.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use perfprof::timing::{latency_summary, LatencySummary};
use treemem::sync::TrackedMutex;

/// Retain at most this many recent samples per recorder (a ring buffer):
/// the summaries describe the recent window, and memory stays bounded no
/// matter how long the server runs.
const RECORDER_CAPACITY: usize = 65_536;

/// A bounded ring of latency samples.
pub struct LatencyRecorder {
    samples: TrackedMutex<RecorderRing>,
}

struct RecorderRing {
    ring: Vec<f64>,
    /// Total samples ever recorded; `ring[next % capacity]` is overwritten.
    recorded: usize,
}

impl LatencyRecorder {
    fn new() -> Self {
        LatencyRecorder {
            samples: TrackedMutex::new(
                RecorderRing {
                    ring: Vec::new(),
                    recorded: 0,
                },
                "server-stats.latency-ring",
            ),
        }
    }

    /// Record one sample, in seconds.
    pub fn record(&self, seconds: f64) {
        let mut inner = self.samples.lock();
        if inner.ring.len() < RECORDER_CAPACITY {
            inner.ring.push(seconds);
        } else {
            let slot = inner.recorded % RECORDER_CAPACITY;
            inner.ring[slot] = seconds;
        }
        inner.recorded += 1;
    }

    /// Percentile summary of the retained window.
    pub fn summary(&self) -> LatencySummary {
        let inner = self.samples.lock();
        latency_summary(&inner.ring)
    }
}

/// Names of the per-request-stage recorders, in report order.  `parse` is
/// body parsing + validation, `plan` the ordering/symbolic stages (cache
/// misses only), `solver`/`io`/`numeric` the schedule and execute stages,
/// `solve` the batched triangular solves (`/solve` and solve-enabled
/// reports).
pub const STAGE_NAMES: [&str; 6] = ["parse", "plan", "solver", "io", "numeric", "solve"];

/// Names of the latency-tracked endpoints, in report order.
pub const ENDPOINT_NAMES: [&str; 4] = ["plan", "schedule", "report", "solve"];

/// Stages a cooperative cancellation can be observed in (the `stage` field
/// of `EngineError::Cancelled`), plus a trailing catch-all slot.
pub const CANCEL_STAGE_NAMES: [&str; 9] = [
    "plan",
    "ordering",
    "symbolic",
    "solver",
    "io",
    "numeric",
    "distributed",
    "solve",
    "other",
];

/// All counters and recorders of one running server.
pub struct ServerStats {
    started: Instant,
    /// Requests currently being parsed or executed.
    pub in_flight: AtomicUsize,
    /// Connections accepted over the server's lifetime.
    pub accepted_total: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (client errors, including every malformed document).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (handler panics and I/O faults).
    pub responses_5xx: AtomicU64,
    endpoints: [LatencyRecorder; ENDPOINT_NAMES.len()],
    stages: [LatencyRecorder; STAGE_NAMES.len()],
    cancelled: [AtomicU64; CANCEL_STAGE_NAMES.len()],
}

impl ServerStats {
    pub(crate) fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            in_flight: AtomicUsize::new(0),
            accepted_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            endpoints: std::array::from_fn(|_| LatencyRecorder::new()),
            stages: std::array::from_fn(|_| LatencyRecorder::new()),
            cancelled: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Count one cancellation observed in `stage` (unknown stages land in
    /// the `"other"` slot so nothing is silently dropped).
    pub fn count_cancelled(&self, stage: &str) {
        let index = CANCEL_STAGE_NAMES
            .iter()
            .position(|name| *name == stage)
            .unwrap_or(CANCEL_STAGE_NAMES.len() - 1);
        self.cancelled[index].fetch_add(1, Ordering::Relaxed);
    }

    /// Cancellations counted in `stage` so far.
    pub fn cancelled_in(&self, stage: &str) -> u64 {
        CANCEL_STAGE_NAMES
            .iter()
            .position(|name| *name == stage)
            .map_or(0, |index| self.cancelled[index].load(Ordering::Relaxed))
    }

    /// Cancellations counted across every stage.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled
            .iter()
            .map(|counter| counter.load(Ordering::Relaxed))
            .sum()
    }

    /// Count one response with `status`.
    pub fn count_response(&self, status: u16) {
        let counter = match status / 100 {
            2 => &self.responses_2xx,
            4 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The whole-request latency recorder of `endpoint` (an
    /// [`ENDPOINT_NAMES`] entry), if it is tracked.
    pub fn endpoint(&self, endpoint: &str) -> Option<&LatencyRecorder> {
        ENDPOINT_NAMES
            .iter()
            .position(|name| *name == endpoint)
            .map(|index| &self.endpoints[index])
    }

    /// The per-stage latency recorder of `stage` (a [`STAGE_NAMES`] entry),
    /// if it is tracked.
    pub fn stage(&self, stage: &str) -> Option<&LatencyRecorder> {
        STAGE_NAMES
            .iter()
            .position(|name| *name == stage)
            .map(|index| &self.stages[index])
    }

    /// Render everything (plus the given cache counters, worker count, and
    /// distributed-cluster snapshot) as the `/stats` JSON document (schema
    /// `engine_server_stats/v1`).
    ///
    /// The legacy top-level `cache` and `factor_cache` sections are pinned
    /// (older dashboards read them); the versioned `caches` object carries
    /// the full byte-level picture — policy, byte budget and usage,
    /// uncacheable count, and per-tenant usage.
    pub fn to_json(
        &self,
        cache: &engine::CacheStats,
        factors: &engine::CacheStats,
        workers: usize,
        cluster: &distrib::ClusterSnapshot,
    ) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"engine_server_stats/v1\",\n");
        out.push_str(&format!(
            "  \"uptime_seconds\": {:.3},\n",
            self.started.elapsed().as_secs_f64()
        ));
        out.push_str(&format!("  \"workers\": {workers},\n"));
        out.push_str(&format!(
            "  \"in_flight\": {},\n",
            self.in_flight.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "  \"accepted_total\": {},\n",
            self.accepted_total.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "  \"responses\": {{\"status_2xx\": {}, \"status_4xx\": {}, \"status_5xx\": {}}},\n",
            self.responses_2xx.load(Ordering::Relaxed),
            self.responses_4xx.load(Ordering::Relaxed),
            self.responses_5xx.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.6}, \
             \"evictions\": {}, \"expirations\": {}, \"entries\": {}, \"capacity\": {}}},\n",
            cache.hits,
            cache.misses,
            cache.hit_rate(),
            cache.evictions,
            cache.expirations,
            cache.entries,
            cache.capacity
        ));
        out.push_str(&format!(
            "  \"factor_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"entries\": {}, \"capacity\": {}}},\n",
            factors.hits, factors.misses, factors.evictions, factors.entries, factors.capacity
        ));
        out.push_str(&format!(
            "  \"caches\": {{\"schema\": \"engine_server_caches/v1\", \"plan\": {}, \
             \"factor\": {}}},\n",
            cache_json(cache),
            cache_json(factors)
        ));
        out.push_str("  \"endpoints\": {");
        for (index, name) in ENDPOINT_NAMES.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {}",
                self.endpoints[index].summary().to_json()
            ));
        }
        out.push_str("},\n  \"stages\": {");
        for (index, name) in STAGE_NAMES.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {}",
                self.stages[index].summary().to_json()
            ));
        }
        out.push_str("},\n  \"cluster\": ");
        out.push_str(&cluster.to_json_fragment());
        out.push_str(",\n  \"cancelled\": {");
        out.push_str(&format!("\"total\": {}", self.cancelled_total()));
        for (index, name) in CANCEL_STAGE_NAMES.iter().enumerate() {
            out.push_str(&format!(
                ", \"{name}\": {}",
                self.cancelled[index].load(Ordering::Relaxed)
            ));
        }
        out.push_str("}\n}\n");
        out
    }
}

/// One cache's entry in the versioned `caches` object: full byte-level
/// counters plus per-tenant usage.  Byte-unbounded capacities (the
/// `u64::MAX` sentinel) render as `null`.
fn cache_json(stats: &engine::CacheStats) -> String {
    use engine::json::escape;
    let bytes_capacity = if stats.bytes_capacity == u64::MAX {
        "null".to_string()
    } else {
        stats.bytes_capacity.to_string()
    };
    let max_entries = if stats.capacity == 0 {
        "null".to_string()
    } else {
        stats.capacity.to_string()
    };
    let mut out = format!(
        "{{\"policy\": \"{}\", \"bytes_capacity\": {bytes_capacity}, \"bytes_used\": {}, \
         \"max_entries\": {max_entries}, \"entries\": {}, \"hits\": {}, \"misses\": {}, \
         \"hit_rate\": {:.6}, \"evictions\": {}, \"expirations\": {}, \"uncacheable\": {}, \
         \"tenants\": {{",
        escape(&stats.policy),
        stats.bytes_used,
        stats.entries,
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        stats.evictions,
        stats.expirations,
        stats.uncacheable,
    );
    for (index, tenant) in stats.per_tenant.iter().enumerate() {
        if index > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\"{}\": {{\"bytes\": {}, \"entries\": {}, \"hits\": {}, \"misses\": {}, \
             \"uncacheable\": {}}}",
            escape(&tenant.tenant),
            tenant.bytes,
            tenant.entries,
            tenant.hits,
            tenant.misses,
            tenant.uncacheable,
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::json::Json;

    #[test]
    fn recorder_summarises_and_stays_bounded() {
        let recorder = LatencyRecorder::new();
        for i in 1..=100 {
            recorder.record(i as f64);
        }
        let summary = recorder.summary();
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_seconds, 50.0);
        assert_eq!(summary.p99_seconds, 99.0);
    }

    #[test]
    fn stats_json_parses_and_carries_the_counters() {
        let stats = ServerStats::new();
        stats.count_response(200);
        stats.count_response(400);
        stats.count_response(500);
        stats.endpoint("plan").unwrap().record(0.25);
        stats.stage("parse").unwrap().record(0.001);
        assert!(stats.endpoint("nope").is_none());
        let cache = engine::CacheStats {
            hits: 3,
            misses: 1,
            capacity: 8,
            ..Default::default()
        };
        let factors = engine::CacheStats {
            hits: 2,
            capacity: 8,
            policy: "LRU".to_string(),
            bytes_used: 1024,
            bytes_capacity: u64::MAX,
            per_tenant: vec![engine::TenantUsage {
                tenant: "public".to_string(),
                bytes: 1024,
                entries: 1,
                hits: 2,
                misses: 0,
                uncacheable: 0,
            }],
            ..Default::default()
        };
        let cluster = distrib::ClusterStats::new();
        cluster.note_worker("w-0");
        let doc = stats.to_json(&cache, &factors, 4, &cluster.snapshot());
        let json = Json::parse(&doc).unwrap();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("engine_server_stats/v1")
        );
        assert_eq!(
            json.get("responses")
                .and_then(|r| r.get("status_4xx"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            json.get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            json.get("factor_cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // The versioned caches object carries the byte-level picture.
        let caches = json.get("caches").expect("caches object present");
        assert_eq!(
            caches.get("schema").and_then(Json::as_str),
            Some("engine_server_caches/v1")
        );
        let factor_cache = caches.get("factor").expect("factor cache section");
        assert_eq!(
            factor_cache.get("policy").and_then(Json::as_str),
            Some("LRU")
        );
        assert_eq!(
            factor_cache.get("bytes_used").and_then(Json::as_u64),
            Some(1024)
        );
        // The u64::MAX sentinel renders as null (byte-unbounded).
        assert!(matches!(
            factor_cache.get("bytes_capacity"),
            Some(Json::Null)
        ));
        assert_eq!(
            factor_cache
                .get("tenants")
                .and_then(|t| t.get("public"))
                .and_then(|p| p.get("bytes"))
                .and_then(Json::as_u64),
            Some(1024)
        );
        assert!(json
            .get("stages")
            .and_then(|s| s.get("solve"))
            .and_then(|s| s.get("count"))
            .is_some());
        assert_eq!(
            json.get("endpoints")
                .and_then(|e| e.get("plan"))
                .and_then(|p| p.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            json.get("cluster")
                .and_then(|c| c.get("workers"))
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }
}
