//! A byte-sized cache of computed Cholesky factors, keyed by
//! effective-config hash: the substrate of `POST /solve`.
//!
//! Every `/report` run with the numeric stage enabled deposits its
//! [`engine::FactorHandle`] here, and a later `/solve` resolves the hash to
//! the cached factor without re-running the factorization — that is the
//! whole point of the endpoint: the expensive part (ordering, symbolic
//! analysis, numeric factorization) happens once, the cheap part (two
//! triangular solves per right-hand side) happens per request.
//!
//! The cache is a thin wrapper over [`engine::CacheCore`]: capacity is a
//! **byte budget** sized from [`engine::FactorHandle::approx_heap_bytes`]
//! (a single 10⁶-node factor can dwarf hundreds of small ones, so counting
//! entries misrepresents pressure by orders of magnitude), eviction runs
//! through any registered serving policy, and deposits are charged to the
//! tenant that reported them.  The legacy count-bounded constructor
//! ([`FactorCache::new`]) keeps the historical LRU semantics for existing
//! callers and tests.  There is no TTL: a factor never goes stale (the
//! configuration hash pins problem, ordering, and kernel bit-for-bit).

use std::sync::Arc;

use engine::cache::{Admission, CacheConfig, CacheCore, ServingPolicyRegistry};
use engine::{CacheStats, FactorHandle, DEFAULT_TENANT};
use treemem::registry::UnknownName;

/// Construction parameters for the byte-sized factor cache.
#[derive(Debug, Clone)]
pub struct FactorCacheConfig {
    /// Eviction policy name (see
    /// [`ServingPolicyRegistry::with_builtin`]).
    pub policy: String,
    /// Byte budget for cached factors.
    pub bytes_capacity: u64,
    /// Optional legacy entry bound on top of the byte budget.
    pub max_entries: Option<usize>,
    /// Per-tenant byte quota.
    pub tenant_quota_bytes: Option<u64>,
    /// Fair-share floor fraction in `[0, 1]`.
    pub tenant_floor: f64,
}

impl Default for FactorCacheConfig {
    fn default() -> Self {
        FactorCacheConfig {
            policy: "GDSF".to_string(),
            bytes_capacity: u64::MAX,
            max_entries: None,
            tenant_quota_bytes: None,
            tenant_floor: 0.0,
        }
    }
}

/// The factor cache; see the module docs.
pub struct FactorCache {
    core: CacheCore<FactorHandle>,
}

impl FactorCache {
    /// The legacy count-bounded LRU: at most `capacity` factors (at least
    /// 1), unlimited bytes.
    pub fn new(capacity: usize) -> Self {
        let config = FactorCacheConfig {
            policy: "LRU".to_string(),
            bytes_capacity: u64::MAX,
            max_entries: Some(capacity.max(1)),
            ..FactorCacheConfig::default()
        };
        match Self::with_config(config) {
            Ok(cache) => cache,
            // "LRU" is always registered; keep the legacy constructor
            // infallible without a panic path in server code.
            Err(_) => FactorCache {
                core: CacheCore::with_policy(
                    CacheConfig {
                        max_entries: Some(capacity.max(1)),
                        lock_class: "factor-cache.inner",
                        ..CacheConfig::default()
                    },
                    &engine::cache::policy::CountLru,
                ),
            },
        }
    }

    /// A byte-sized cache evicting via any registered policy.
    pub fn with_config(config: FactorCacheConfig) -> Result<Self, UnknownName> {
        let registry = ServingPolicyRegistry::with_builtin();
        let core = CacheCore::new(
            CacheConfig {
                policy: config.policy,
                bytes_capacity: config.bytes_capacity,
                max_entries: config.max_entries,
                ttl: None,
                tenant_quota_bytes: config.tenant_quota_bytes,
                tenant_floor: config.tenant_floor,
                lock_class: "factor-cache.inner",
            },
            &registry,
        )?;
        Ok(FactorCache { core })
    }

    /// Look up the factor of `config_hash`, marking it most recently used.
    pub fn get(&self, config_hash: &str) -> Option<Arc<FactorHandle>> {
        self.core.get(config_hash, DEFAULT_TENANT)
    }

    /// [`FactorCache::get`] on behalf of `tenant`.
    pub fn get_for(&self, config_hash: &str, tenant: &str) -> Option<Arc<FactorHandle>> {
        self.core.get(config_hash, tenant)
    }

    /// Cache `handle` under `config_hash` (replacing any previous factor of
    /// the same hash), evicting through the configured policy when space is
    /// needed.
    pub fn insert(&self, config_hash: &str, handle: Arc<FactorHandle>) {
        self.insert_for(config_hash, DEFAULT_TENANT, handle);
    }

    /// [`FactorCache::insert`] charged to `tenant`; the footprint comes
    /// from [`engine::FactorHandle::approx_heap_bytes`].  Returns the
    /// admission verdict (an over-quota deposit is served-but-uncached).
    pub fn insert_for(
        &self,
        config_hash: &str,
        tenant: &str,
        handle: Arc<FactorHandle>,
    ) -> Admission {
        let bytes = handle.approx_heap_bytes();
        self.core.insert(config_hash, tenant, handle, bytes)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.core.stats()
    }

    /// Audit the byte/tenant accounting; see
    /// [`engine::CacheCore::validate_accounting`].
    pub fn validate_accounting(&self) -> Result<(), String> {
        self.core.validate_accounting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::prelude::*;

    fn sized_handle(seed: u64, n: usize) -> Arc<FactorHandle> {
        let engine = Engine::new();
        let config = EngineConfig::generated(sparsemat::gen::ProblemKind::Banded, n, seed)
            .with_numeric(true);
        let plan = engine.plan(&config).unwrap();
        let (_, handle) = plan
            .schedule(&engine)
            .unwrap()
            .execute_with_factor(&engine)
            .unwrap();
        Arc::new(handle.unwrap())
    }

    fn handle(seed: u64) -> Arc<FactorHandle> {
        sized_handle(seed, 12)
    }

    #[test]
    fn lru_evicts_the_coldest_factor() {
        let cache = FactorCache::new(2);
        cache.insert("a", handle(1));
        cache.insert("b", handle(2));
        assert!(cache.get("a").is_some()); // "b" is now coldest
        cache.insert("c", handle(3));
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes_used > 0, "factors carry byte footprints");
    }

    #[test]
    fn reinsertion_replaces_without_eviction() {
        let cache = FactorCache::new(2);
        cache.insert("a", handle(1));
        cache.insert("a", handle(4));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn byte_budget_accounts_lopsided_factor_sizes() {
        // Regression for the count-based accounting: a 10× larger problem
        // yields a far heavier factor, and a byte-bounded cache must make
        // it displace several small ones — not count it as "one entry".
        let small: Vec<Arc<FactorHandle>> = (0..4).map(|s| sized_handle(s, 12)).collect();
        let big = sized_handle(9, 400);
        let small_bytes = small[0].approx_heap_bytes();
        let big_bytes = big.approx_heap_bytes();
        assert!(
            big_bytes > 4 * small_bytes,
            "a 400-unknown factor ({big_bytes}B) must dwarf a 12-unknown one ({small_bytes}B)"
        );
        // Budget: all four small factors fit; the big one fits only after
        // evicting more than one of them.
        let budget = 4 * small_bytes + big_bytes - 1;
        let cache = FactorCache::with_config(FactorCacheConfig {
            policy: "LRU".to_string(),
            bytes_capacity: budget,
            ..FactorCacheConfig::default()
        })
        .unwrap();
        for (i, h) in small.iter().enumerate() {
            cache.insert(&format!("small-{i}"), Arc::clone(h));
        }
        assert_eq!(cache.stats().entries, 4);
        cache.insert("big", Arc::clone(&big));
        let stats = cache.stats();
        assert!(cache.get("big").is_some());
        assert!(
            stats.evictions >= 1,
            "the big factor must evict by bytes, not slots"
        );
        assert!(stats.bytes_used <= budget, "byte budget respected");
        cache.validate_accounting().unwrap();
    }

    #[test]
    fn oversized_factor_is_served_but_not_cached() {
        let big = sized_handle(3, 400);
        let cache = FactorCache::with_config(FactorCacheConfig {
            bytes_capacity: big.approx_heap_bytes() / 2,
            ..FactorCacheConfig::default()
        })
        .unwrap();
        assert!(!cache.insert_for("big", "public", big).is_cached());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().uncacheable, 1);
    }

    #[test]
    fn concurrent_deposits_lookups_and_evictions_stay_consistent() {
        // The serving pattern under load: `/report` handlers depositing,
        // `/solve` handlers looking up, all racing the LRU eviction of a
        // deliberately tiny cache.  Every resolved factor must be usable
        // (solvable with a small residual), and the counters must balance.
        let cache = Arc::new(FactorCache::new(3));
        let handles: Vec<Arc<FactorHandle>> = (0..6).map(|seed| handle(seed as u64)).collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let cache = Arc::clone(&cache);
                let handles = &handles;
                scope.spawn(move || {
                    for round in 0..200 {
                        let pick = (worker * 7 + round * 3) % handles.len();
                        let key = format!("factor-{pick}");
                        if (worker + round) % 3 == 0 {
                            cache.insert(&key, Arc::clone(&handles[pick]));
                        } else if let Some(factor) = cache.get(&key) {
                            let mut rhs = factor.generated_rhs(1, round as u64 + 1);
                            factor.solve_batch(&mut rhs).expect("cached factor solves");
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.entries <= 3, "over capacity: {}", stats.entries);
        assert!(stats.hits + stats.misses > 0);
        cache.validate_accounting().unwrap();
        // Every key that is still resident resolves to a working factor.
        for pick in 0..handles.len() {
            if let Some(factor) = cache.get(&format!("factor-{pick}")) {
                let rhs = factor.generated_rhs(1, 5);
                let mut solution = rhs.clone();
                factor
                    .solve_batch(&mut solution)
                    .expect("resident factor solves");
                assert!(factor.max_residual(&rhs, &solution) < 1e-8);
            }
        }
    }
}
