//! A bounded LRU of computed Cholesky factors, keyed by effective-config
//! hash: the substrate of `POST /solve`.
//!
//! Every `/report` run with the numeric stage enabled deposits its
//! [`engine::FactorHandle`] here, and a later `/solve` resolves the hash to
//! the cached factor without re-running the factorization — that is the
//! whole point of the endpoint: the expensive part (ordering, symbolic
//! analysis, numeric factorization) happens once, the cheap part (two
//! triangular solves per right-hand side) happens per request.
//!
//! Factors are big — `factor_nnz` doubles — so the cache is strictly
//! bounded by entry count and evicts least-recently-used.  Unlike the plan
//! cache there is no TTL: a factor never goes stale (the configuration hash
//! pins problem, ordering, and kernel bit-for-bit).

use std::sync::Arc;

use engine::FactorHandle;
use treemem::sync::TrackedMutex;

/// Counters for the `/stats` document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactorCacheStats {
    /// `/solve` requests answered from the cache.
    pub hits: u64,
    /// `/solve` requests whose hash had no cached factor (404s).
    pub misses: u64,
    /// Factors evicted to respect the capacity.
    pub evictions: u64,
    /// Factors currently cached.
    pub entries: usize,
    /// Maximum number of cached factors.
    pub capacity: usize,
}

struct FactorCacheInner {
    /// Most-recently-used last; linear scans are fine at the capacities
    /// this cache runs at (a handful of factors, each megabytes).
    entries: Vec<(String, Arc<FactorHandle>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The bounded factor cache; see the module docs.
pub struct FactorCache {
    inner: TrackedMutex<FactorCacheInner>,
    capacity: usize,
}

impl FactorCache {
    /// A cache retaining at most `capacity` factors (at least 1).
    pub fn new(capacity: usize) -> Self {
        FactorCache {
            inner: TrackedMutex::new(
                FactorCacheInner {
                    entries: Vec::new(),
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                },
                "factor-cache.inner",
            ),
            capacity: capacity.max(1),
        }
    }

    /// Look up the factor of `config_hash`, marking it most recently used.
    pub fn get(&self, config_hash: &str) -> Option<Arc<FactorHandle>> {
        let mut inner = self.inner.lock();
        match inner
            .entries
            .iter()
            .position(|(hash, _)| hash == config_hash)
        {
            Some(index) => {
                let entry = inner.entries.remove(index);
                let handle = entry.1.clone();
                inner.entries.push(entry);
                inner.hits += 1;
                Some(handle)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Cache `handle` under `config_hash` (replacing any previous factor of
    /// the same hash), evicting the least recently used entry when full.
    pub fn insert(&self, config_hash: &str, handle: Arc<FactorHandle>) {
        let mut inner = self.inner.lock();
        if let Some(index) = inner
            .entries
            .iter()
            .position(|(hash, _)| hash == config_hash)
        {
            inner.entries.remove(index);
        } else if inner.entries.len() >= self.capacity {
            inner.entries.remove(0);
            inner.evictions += 1;
        }
        inner.entries.push((config_hash.to_string(), handle));
    }

    /// Current counters.
    pub fn stats(&self) -> FactorCacheStats {
        let inner = self.inner.lock();
        FactorCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::prelude::*;

    fn handle(seed: u64) -> Arc<FactorHandle> {
        let engine = Engine::new();
        let config = EngineConfig::generated(sparsemat::gen::ProblemKind::Banded, 12, seed)
            .with_numeric(true);
        let plan = engine.plan(&config).unwrap();
        let (_, handle) = plan
            .schedule(&engine)
            .unwrap()
            .execute_with_factor(&engine)
            .unwrap();
        Arc::new(handle.unwrap())
    }

    #[test]
    fn lru_evicts_the_coldest_factor() {
        let cache = FactorCache::new(2);
        cache.insert("a", handle(1));
        cache.insert("b", handle(2));
        assert!(cache.get("a").is_some()); // "b" is now coldest
        cache.insert("c", handle(3));
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn reinsertion_replaces_without_eviction() {
        let cache = FactorCache::new(2);
        cache.insert("a", handle(1));
        cache.insert("a", handle(4));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn concurrent_deposits_lookups_and_evictions_stay_consistent() {
        // The serving pattern under load: `/report` handlers depositing,
        // `/solve` handlers looking up, all racing the LRU eviction of a
        // deliberately tiny cache.  Every resolved factor must be usable
        // (solvable with a small residual), and the counters must balance.
        let cache = Arc::new(FactorCache::new(3));
        let handles: Vec<Arc<FactorHandle>> = (0..6).map(|seed| handle(seed as u64)).collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let cache = Arc::clone(&cache);
                let handles = &handles;
                scope.spawn(move || {
                    for round in 0..200 {
                        let pick = (worker * 7 + round * 3) % handles.len();
                        let key = format!("factor-{pick}");
                        if (worker + round) % 3 == 0 {
                            cache.insert(&key, Arc::clone(&handles[pick]));
                        } else if let Some(factor) = cache.get(&key) {
                            let mut rhs = factor.generated_rhs(1, round as u64 + 1);
                            factor.solve_batch(&mut rhs).expect("cached factor solves");
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.entries <= 3, "over capacity: {}", stats.entries);
        assert!(stats.hits + stats.misses > 0);
        // Every key that is still resident resolves to a working factor.
        for pick in 0..handles.len() {
            if let Some(factor) = cache.get(&format!("factor-{pick}")) {
                let rhs = factor.generated_rhs(1, 5);
                let mut solution = rhs.clone();
                factor
                    .solve_batch(&mut solution)
                    .expect("resident factor solves");
                assert!(factor.max_residual(&rhs, &solution) < 1e-8);
            }
        }
    }
}
