//! # server — factorization-as-a-service over the engine facade
//!
//! A dependency-free HTTP/1.1 JSON service on `std::net::TcpListener` that
//! puts the `engine` crate's typed `EngineConfig → Plan → Schedule → Report`
//! pipeline behind a network boundary: a request body is a configuration, a
//! response body is a report, and identical configurations hit a shared
//! [`engine::PlanCache`] instead of re-running the ordering and symbolic
//! stages.
//!
//! ## Endpoints
//!
//! | method & path     | body            | result |
//! |-------------------|-----------------|--------|
//! | `POST /plan`      | `EngineConfig`  | effective-config hash, node counts, cache disposition |
//! | `POST /schedule`  | `EngineConfig`  | traversal peak, memory budget, I/O volume, divisible bound |
//! | `POST /report`    | `EngineConfig`  | the full `engine_report/v1` document |
//! | `POST /solve`     | solve request   | batched triangular solves against a cached factor |
//! | `GET /healthz`    | —               | liveness probe |
//! | `GET /stats`      | —               | cache hit rates, in-flight count, per-stage latency percentiles, cluster counters |
//! | `POST /internal/claim` | claim frame | lease one subtree task of a distributed job to a worker |
//! | `POST /internal/contribute` | contribution frame | absorb a worker's factored subtree columns and blocks |
//! | `GET /internal/job/{id}` | —        | progress of one live distributed job |
//!
//! A `/report` whose configuration enables the `distributed` section does
//! not factor locally: the coordinator parks the cut's subtree tasks in a
//! job registry, worker *processes* (`serve --role worker`) claim and
//! factor them under leased budget reservations, and the request blocks
//! until the merged — bit-identical — factor is assembled (see
//! [`worker`] and the `distrib` crate).
//!
//! `POST` responses carry `X-Cache: hit|miss` and `X-Config-Hash` headers;
//! a cache-hit report is identical to the cold-path report for the same
//! configuration except for wall-clock timings.
//!
//! A numeric `/report` deposits its Cholesky factor in a bounded
//! [`factors::FactorCache`]; `POST /solve` then names that report's
//! `X-Config-Hash` in its body (`{"config_hash": "...", "count": 8}` or
//! explicit `"vectors"`) and gets the batched solve — two triangular
//! sweeps per right-hand side — without re-running the factorization.
//! An unknown hash is a 404 (`X-Cache: miss`).
//!
//! Connections are accepted on one thread and executed on a fixed
//! [`engine::parallel::WorkerPool`]; malformed requests (bad HTTP framing,
//! invalid JSON, unknown names, depth bombs) are answered with 4xx JSON
//! errors, and a handler panic is contained to a 500 on that connection.
//!
//! ```no_run
//! use server::{Server, ServerConfig};
//!
//! let handle = Server::spawn(ServerConfig::default()).unwrap();
//! println!("serving on http://{}", handle.addr());
//! handle.shutdown().unwrap();
//! ```

pub mod client;
pub mod factors;
pub mod http;
pub mod service;
pub mod stats;
pub mod worker;

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use engine::parallel::WorkerPool;
use engine::PlanCache;

use crate::http::{read_request, write_response, HttpError};
use crate::service::{Response, Service};

/// Tuning knobs of a [`Server`]; `Default` is sized for local use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is on
    /// the [`ServerHandle`]).
    pub addr: String,
    /// Worker threads executing requests (at least 1).
    pub workers: usize,
    /// Maximum number of cached plans.
    pub cache_capacity: usize,
    /// Optional time-to-live of a cached plan.
    pub cache_ttl: Option<Duration>,
    /// Maximum number of cached Cholesky factors (`POST /solve` resolves
    /// against this cache).  Factors are much bigger than plans, so the
    /// default is deliberately small.
    pub factor_cache_capacity: usize,
    /// Largest accepted request body, in bytes (prebuilt-tree configurations
    /// inline three arrays per node, so this is generous by default).
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Maximum number of accepted connections waiting for a worker; beyond
    /// it, new connections are answered `503` immediately instead of
    /// growing the queue (and the open-socket count) without bound.
    pub max_backlog: usize,
    /// Deadline applied to requests that name none (header or body);
    /// `None` means such requests run unbounded.
    pub default_deadline: Option<Duration>,
    /// Ceiling on every request deadline.  When set, even requests that
    /// ask for no deadline are bounded by it, and requested deadlines are
    /// clamped down to it.
    pub max_deadline: Option<Duration>,
    /// Byte-sized cache settings; the default keeps the legacy
    /// count-bounded LRU behaviour of `cache_capacity` /
    /// `factor_cache_capacity`.
    pub cache: CacheSettings,
}

/// The `cache` section of the boot configuration: policy selection, byte
/// budgets, and tenant quotas for the plan and factor caches.
///
/// `Default` leaves everything unset, which keeps the caches in their
/// legacy count-bounded LRU mode.  Setting a byte budget switches the
/// corresponding cache to byte-accurate accounting under `policy`
/// (default `"GDSF"`), replacing the entry bound.
#[derive(Debug, Clone, Default)]
pub struct CacheSettings {
    /// Eviction policy name for both caches (a
    /// [`engine::ServingPolicyRegistry`] name).  `None` picks `"GDSF"` in
    /// byte mode and `"LRU"` in legacy count mode.
    pub policy: Option<String>,
    /// Byte budget of the plan cache; `None` keeps the entry bound of
    /// [`ServerConfig::cache_capacity`].
    pub plan_bytes: Option<u64>,
    /// Byte budget of the factor cache; `None` keeps the entry bound of
    /// [`ServerConfig::factor_cache_capacity`].
    pub factor_bytes: Option<u64>,
    /// Per-tenant byte quota on each cache (over-quota inserts are
    /// admitted but uncacheable).
    pub tenant_quota_bytes: Option<u64>,
    /// Fair-share floor fraction in `[0, 1]`: a tenant holding no more
    /// than `floor × capacity / active_tenants` bytes cannot be evicted
    /// by other tenants' traffic.
    pub tenant_floor: f64,
}

impl CacheSettings {
    /// The effective policy name: explicit choice, else `"GDSF"` when any
    /// byte budget is set, else the legacy `"LRU"`.
    fn effective_policy(&self, byte_mode: bool) -> String {
        match &self.policy {
            Some(name) => name.clone(),
            None if byte_mode => "GDSF".to_string(),
            None => "LRU".to_string(),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: engine::parallel::default_threads(usize::MAX),
            cache_capacity: 64,
            cache_ttl: None,
            factor_cache_capacity: 8,
            max_body_bytes: 64 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            max_backlog: 1024,
            default_deadline: None,
            max_deadline: None,
            cache: CacheSettings::default(),
        }
    }
}

/// The server factory; see the crate docs.  All the state lives in the
/// [`ServerHandle`] returned by [`Server::spawn`].
pub struct Server;

impl Server {
    /// Bind `config.addr`, spawn the accept thread plus the worker pool, and
    /// return the handle used to query the bound address and to stop the
    /// server.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let plan_byte_mode = config.cache.plan_bytes.is_some();
        let plan_cache = PlanCache::with_config(engine::PlanCacheConfig {
            policy: config.cache.effective_policy(plan_byte_mode),
            bytes_capacity: config.cache.plan_bytes.unwrap_or(u64::MAX),
            max_entries: if plan_byte_mode {
                None
            } else {
                Some(config.cache_capacity.max(1))
            },
            ttl: config.cache_ttl,
            tenant_quota_bytes: config.cache.tenant_quota_bytes,
            tenant_floor: config.cache.tenant_floor,
        })
        .map_err(|e| std::io::Error::other(format!("plan cache: {e}")))?;
        let factor_byte_mode = config.cache.factor_bytes.is_some();
        let factor_cache =
            crate::factors::FactorCache::with_config(crate::factors::FactorCacheConfig {
                policy: config.cache.effective_policy(factor_byte_mode),
                bytes_capacity: config.cache.factor_bytes.unwrap_or(u64::MAX),
                max_entries: if factor_byte_mode {
                    None
                } else {
                    Some(config.factor_cache_capacity.max(1))
                },
                tenant_quota_bytes: config.cache.tenant_quota_bytes,
                tenant_floor: config.cache.tenant_floor,
            })
            .map_err(|e| std::io::Error::other(format!("factor cache: {e}")))?;
        let service = Arc::new(
            Service::new(plan_cache, factor_cache, workers)
                .with_deadlines(config.default_deadline, config.max_deadline),
        );
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_service = service.clone();
        let accept_shutdown = shutdown.clone();
        let io_timeout = config.io_timeout;
        let max_body_bytes = config.max_body_bytes;
        let max_backlog = config.max_backlog.max(1);
        let accept_thread = std::thread::Builder::new()
            .name("server-accept".to_string())
            .spawn(move || {
                let pool = WorkerPool::new(workers);
                for connection in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = connection else { continue };
                    let service = accept_service.clone();
                    service
                        .stats()
                        .accepted_total
                        .fetch_add(1, Ordering::Relaxed);
                    if pool.backlog() >= max_backlog {
                        // Shed load on the accept thread: every queued job
                        // holds an open socket, so an unbounded queue would
                        // let a flood of idle connections exhaust file
                        // descriptors long before any worker times out.
                        let response = Response::error(503, "server overloaded, retry later");
                        service.stats().count_response(response.status);
                        let _ = stream.set_write_timeout(Some(io_timeout));
                        let _ = write_response(
                            &mut stream,
                            response.status,
                            &[("Retry-After", "1")],
                            &response.body,
                        );
                        // The request was never read, so close gracefully
                        // (same reset-vs-response race as in
                        // `handle_connection`, with a tighter budget to keep
                        // the accept thread responsive).
                        graceful_close(&stream, Duration::from_millis(10));
                        continue;
                    }
                    pool.submit(move || {
                        handle_connection(&service, stream, io_timeout, max_body_bytes);
                    });
                }
                pool.shutdown();
            })
            .expect("spawning the accept thread failed");

        Ok(ServerHandle {
            addr,
            service,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }
}

/// A running server: the bound address plus the shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (stats and cache counters), mainly for tests and
    /// the load generator.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Stop accepting, finish the in-flight requests, and join every
    /// thread.  Idempotent-ish: safe to call once; dropping the handle
    /// without calling it aborts the accept loop the same way.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> std::io::Result<()> {
        let Some(accept_thread) = self.accept_thread.take() else {
            return Ok(());
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it awake with a throwaway
        // connection so it observes the flag.  A wildcard bind address
        // (0.0.0.0 / ::) is not connectable on every platform, so the wake
        // connection targets the loopback of the same family instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        accept_thread
            .join()
            .map_err(|_| std::io::Error::other("accept thread panicked"))
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// Serve one connection: read a request, execute it (panics contained to a
/// 500), write the single response, close.
fn handle_connection(
    service: &Service,
    mut stream: TcpStream,
    io_timeout: Duration,
    max_body_bytes: usize,
) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    service.stats().in_flight.fetch_add(1, Ordering::SeqCst);
    let parsed = read_request(&mut stream, max_body_bytes);
    let request_unread = parsed.is_err();
    let response = match parsed {
        Ok(request) => {
            match std::panic::catch_unwind(AssertUnwindSafe(|| service.handle_request(&request))) {
                Ok(response) => response,
                Err(_) => {
                    let response = Response::error(500, "request handler panicked");
                    service.stats().count_response(response.status);
                    response
                }
            }
        }
        Err(HttpError { status, message }) => {
            let response = Response::error(status, &message);
            service.stats().count_response(response.status);
            response
        }
    };
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(hit) = response.cache_hit {
        headers.push(("X-Cache", if hit { "hit" } else { "miss" }));
    }
    if let Some(hash) = &response.config_hash {
        headers.push(("X-Config-Hash", hash));
    }
    if response.status == 503 || response.status == 504 {
        // Both are transient: shed load and expired deadlines clear on
        // retry (a 504's plan may even be cached by then).
        headers.push(("Retry-After", "1"));
    }
    let _ = write_response(&mut stream, response.status, &headers, &response.body);
    // The request is done before the peer is released: the decrement must
    // happen-before the FIN below, so a client that saw our EOF never
    // observes itself still counted in `/stats`.
    service.stats().in_flight.fetch_sub(1, Ordering::SeqCst);
    // Half-close so the peer's read loop sees EOF immediately...
    let _ = stream.shutdown(std::net::Shutdown::Write);
    if request_unread {
        // ...and when the request was rejected before its body was fully
        // read (413 and friends), drain briefly so the leftover bytes do
        // not turn the close into a reset that races the response.
        graceful_close(&stream, Duration::from_millis(50));
    }
}

/// Drain leftover unread request bytes before the socket is dropped, so the
/// close does not become a TCP reset that races (and can destroy) the
/// just-written response.  Bounded in both time (per-read timeout) and
/// volume, so a peer trickling an endless body cannot pin the caller.
fn graceful_close(mut stream: &TcpStream, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut sink = [0u8; 1024];
    let mut budget = 64 * 1024usize;
    while budget > 0 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => budget = budget.saturating_sub(n),
            _ => break,
        }
    }
}
