//! A deliberately small HTTP/1.1 reader/writer over `std::io` streams.
//!
//! The server speaks just enough HTTP for a JSON API: request line, headers,
//! `Content-Length`-framed bodies, one response per connection
//! (`Connection: close`).  Everything is bounded — request-line length,
//! header count and size, body size — so a hostile peer can cost at most a
//! fixed amount of memory per connection, and every violation maps to a
//! specific status code instead of a panic.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on the request line and on any single header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, path, headers, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target (query strings are kept
    /// verbatim; the API uses none).
    pub path: String,
    /// Header `(name, value)` pairs, names lower-cased and both sides
    /// trimmed, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(header, _)| header.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }
}

/// A request that could not be read, tagged with the status code to answer
/// with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code to respond with (400, 413, 431, ...).
    pub status: u16,
    /// Human-readable cause, included in the JSON error body.
    pub message: String,
}

impl HttpError {
    fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "HTTP {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Read one bounded CRLF- (or LF-) terminated line, without the terminator.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            // EOF is never a valid line terminator here: every header line
            // (including the blank one ending the block) must arrive with
            // its newline, otherwise a request truncated mid-headers would
            // be indistinguishable from a complete one and get executed.
            Ok(0) => {
                return Err(HttpError::bad_request("connection closed mid-request"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(HttpError {
                        status: 431,
                        message: "header line too long".to_string(),
                    });
                }
            }
            Err(e) => {
                return Err(HttpError::bad_request(format!("read failed: {e}")));
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::bad_request("non-UTF-8 header data"))
}

/// Read a full request from `stream`, rejecting bodies larger than
/// `max_body_bytes` with status 413.
pub fn read_request(stream: &mut impl Read, max_body_bytes: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("request line has no path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError {
            status: 505,
            message: format!("unsupported protocol version '{version}'"),
        });
    }

    let mut content_length = 0usize;
    let mut headers: Vec<(String, String)> = Vec::new();
    // `..=`: `MAX_HEADERS` header lines plus the blank terminator line.
    for _ in 0..=MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            reader
                .read_exact(&mut body)
                .map_err(|e| HttpError::bad_request(format!("truncated body: {e}")))?;
            return Ok(Request {
                method,
                path,
                headers,
                body,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad_request(format!("malformed header '{line}'")));
        };
        let name = name.trim();
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        if name.eq_ignore_ascii_case("transfer-encoding") {
            // Only `Content-Length` framing is supported; accepting a
            // chunked request as body-less would leave its body unread and
            // desynchronise the connection.
            return Err(HttpError::bad_request(
                "Transfer-Encoding is not supported; send a Content-Length body",
            ));
        }
        if name.eq_ignore_ascii_case("content-length") {
            let length: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::bad_request("unparsable Content-Length"))?;
            if length > max_body_bytes {
                return Err(HttpError {
                    status: 413,
                    message: format!(
                        "body of {length} bytes exceeds the {max_body_bytes}-byte limit"
                    ),
                });
            }
            content_length = length;
        }
    }
    Err(HttpError {
        status: 431,
        message: format!("more than {MAX_HEADERS} headers"),
    })
}

/// The reason phrase for the handful of status codes the API uses.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` JSON response.  `extra_headers` are
/// emitted verbatim (`name: value`).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason_phrase(status),
        body.len()
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    stream.write_all(out.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut raw.as_bytes(), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let request =
            parse("POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/plan");
        assert_eq!(request.body, b"{\"a\"");
    }

    #[test]
    fn headers_are_captured_and_case_insensitive() {
        let request =
            parse("POST /report HTTP/1.1\r\nX-Deadline-Ms:  250 \r\nContent-Length: 0\r\n\r\n")
                .unwrap();
        assert_eq!(request.header("x-deadline-ms"), Some("250"));
        assert_eq!(request.header("X-DEADLINE-MS"), Some("250"));
        assert_eq!(request.header("x-cache"), None);
    }

    #[test]
    fn parses_a_bare_get() {
        let request = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert!(request.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_with_413() {
        let error = parse("POST /plan HTTP/1.1\r\nContent-Length: 99999\r\n\r\n").unwrap_err();
        assert_eq!(error.status, 413);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse("").unwrap_err().status, 400);
        assert_eq!(parse("POST\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/3\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Truncated body: Content-Length promises more than is sent.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn bounds_header_count_and_line_length() {
        let with_headers = |count: usize| {
            let mut raw = String::from("GET / HTTP/1.1\r\n");
            for i in 0..count {
                raw.push_str(&format!("X-H{i}: v\r\n"));
            }
            raw.push_str("\r\n");
            raw
        };
        assert_eq!(parse(&with_headers(100)).unwrap_err().status, 431);
        // Exactly the documented bound is still accepted.
        assert!(parse(&with_headers(MAX_HEADERS)).is_ok());
        assert_eq!(
            parse(&with_headers(MAX_HEADERS + 1)).unwrap_err().status,
            431
        );
        let long = format!("GET / HTTP/1.1\r\nX-L: {}\r\n\r\n", "v".repeat(10_000));
        assert_eq!(parse(&long).unwrap_err().status, 431);
    }

    #[test]
    fn truncated_header_blocks_are_rejected() {
        // No terminating blank line: the request must not be executed.
        let error = parse("GET /stats HTTP/1.1\r\nHost: x").unwrap_err();
        assert_eq!(error.status, 400);
        assert!(error.message.contains("closed mid-request"));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        let error = parse(
            "POST /plan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nbody\r\n0\r\n\r\n",
        )
        .unwrap_err();
        assert_eq!(error.status, 400);
        assert!(error.message.contains("Transfer-Encoding"));
    }

    #[test]
    fn responses_are_framed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, &[("X-Cache", "hit")], "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
