//! `serve` — boot the factorization service from the command line.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--cache-policy NAME]
//!       [--cache-bytes N] [--factor-cache-bytes N]
//!       [--tenant-quota-bytes N] [--tenant-floor F]
//!       [--cache-ttl-seconds S] [--max-body-bytes N]
//!       [--default-deadline-ms MS] [--max-deadline-ms MS]
//! serve --role worker --coordinator HOST:PORT [--worker-id NAME]
//! ```
//!
//! Caches are sized in **bytes** (`--cache-bytes` for plans,
//! `--factor-cache-bytes` for factors) and evict through any registered
//! serving policy (`--cache-policy`; `GDSF` by default in byte mode).  The
//! pre-byte-budget flags `--cache-capacity N` and
//! `--factor-cache-capacity N` are deprecated aliases that map N entries
//! to a byte budget (16 MiB per plan slot, 64 MiB per factor slot) with a
//! boot-time warning.
//!
//! The default role, `coordinator`, binds (port 0 picks an ephemeral port,
//! printed on stdout) and serves until the process is terminated.  See the
//! README's "Serving" and "Distributed execution" sections for the endpoint
//! reference and example sessions.
//!
//! `--role worker` runs no listener at all: the process polls the named
//! coordinator's `/internal/claim`, factors leased subtree tasks, and
//! streams contributions back until killed.
//!
//! Setting the `TREEMEM_FAULT_PLAN` environment variable arms the
//! fault-injection registry at boot (chaos testing only; the format is
//! `action@point#nth[,...]`, e.g. `sleep:40@plan:ordering,panic@execute:numeric#2`).
//! Worker processes honor it too — `drop@parexec:task` makes a worker
//! abandon leases, the chaos harness's simulated crash.

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use server::worker::{run_worker, HttpTransport, WorkerOptions};
use server::{Server, ServerConfig};

/// Byte budget one slot of the deprecated `--cache-capacity` flag maps to.
const PLAN_SLOT_BYTES: u64 = 16 * 1024 * 1024;
/// Byte budget one slot of the deprecated `--factor-cache-capacity` flag
/// maps to (factors are much bigger than plans).
const FACTOR_SLOT_BYTES: u64 = 64 * 1024 * 1024;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--cache-policy NAME]\n\
         \x20      [--cache-bytes N] [--factor-cache-bytes N]\n\
         \x20      [--tenant-quota-bytes N] [--tenant-floor F]\n\
         \x20      [--cache-ttl-seconds S] [--max-body-bytes N]\n\
         \x20      [--default-deadline-ms MS] [--max-deadline-ms MS]\n\
         \x20  or: serve --role worker --coordinator HOST:PORT [--worker-id NAME]\n\
         deprecated: --cache-capacity N / --factor-cache-capacity N\n\
         \x20      (entry counts; mapped to byte budgets at boot)"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(value) = value else {
        eprintln!("serve: {flag} needs a value");
        usage();
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("serve: invalid value '{value}' for {flag}");
        usage();
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServerConfig::default()
    };
    let mut role = "coordinator".to_string();
    let mut coordinator: Option<String> = None;
    let mut worker_id: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--role" => role = parse("--role", iter.next()),
            "--coordinator" => coordinator = Some(parse("--coordinator", iter.next())),
            "--worker-id" => worker_id = Some(parse("--worker-id", iter.next())),
            "--addr" => config.addr = parse("--addr", iter.next()),
            "--workers" => config.workers = parse("--workers", iter.next()),
            "--cache-policy" => {
                config.cache.policy = Some(parse("--cache-policy", iter.next()));
            }
            "--cache-bytes" => {
                config.cache.plan_bytes = Some(parse("--cache-bytes", iter.next()));
            }
            "--factor-cache-bytes" => {
                config.cache.factor_bytes = Some(parse("--factor-cache-bytes", iter.next()));
            }
            "--tenant-quota-bytes" => {
                config.cache.tenant_quota_bytes = Some(parse("--tenant-quota-bytes", iter.next()));
            }
            "--tenant-floor" => {
                let floor: f64 = parse("--tenant-floor", iter.next());
                if !(0.0..=1.0).contains(&floor) {
                    eprintln!("serve: --tenant-floor must be within [0, 1], got {floor}");
                    usage();
                }
                config.cache.tenant_floor = floor;
            }
            "--cache-capacity" => {
                let entries: u64 = parse("--cache-capacity", iter.next());
                let bytes = entries.saturating_mul(PLAN_SLOT_BYTES).max(PLAN_SLOT_BYTES);
                eprintln!(
                    "serve: --cache-capacity is deprecated; mapping {entries} plan slot(s) \
                     to --cache-bytes {bytes}"
                );
                config.cache.plan_bytes = Some(bytes);
            }
            "--cache-ttl-seconds" => {
                config.cache_ttl = Some(Duration::from_secs(parse(
                    "--cache-ttl-seconds",
                    iter.next(),
                )));
            }
            "--factor-cache-capacity" => {
                let entries: u64 = parse("--factor-cache-capacity", iter.next());
                let bytes = entries
                    .saturating_mul(FACTOR_SLOT_BYTES)
                    .max(FACTOR_SLOT_BYTES);
                eprintln!(
                    "serve: --factor-cache-capacity is deprecated; mapping {entries} factor \
                     slot(s) to --factor-cache-bytes {bytes}"
                );
                config.cache.factor_bytes = Some(bytes);
            }
            "--max-body-bytes" => config.max_body_bytes = parse("--max-body-bytes", iter.next()),
            "--default-deadline-ms" => {
                config.default_deadline = Some(Duration::from_millis(parse(
                    "--default-deadline-ms",
                    iter.next(),
                )));
            }
            "--max-deadline-ms" => {
                config.max_deadline = Some(Duration::from_millis(parse(
                    "--max-deadline-ms",
                    iter.next(),
                )));
            }
            _ => usage(),
        }
    }
    if let Ok(spec) = std::env::var("TREEMEM_FAULT_PLAN") {
        match engine::faultinject::parse_plan(&spec) {
            Ok(rules) => {
                eprintln!(
                    "serve: TREEMEM_FAULT_PLAN armed {} fault rule(s)",
                    rules.len()
                );
                engine::faultinject::install(rules);
            }
            Err(error) => {
                eprintln!("serve: invalid TREEMEM_FAULT_PLAN '{spec}': {error}");
                std::process::exit(2);
            }
        }
    }
    match role.as_str() {
        "coordinator" => {}
        "worker" => run_worker_role(coordinator, worker_id),
        other => {
            eprintln!("serve: unknown role '{other}' (coordinator or worker)");
            usage();
        }
    }
    let workers = config.workers;
    let handle = Server::spawn(config).unwrap_or_else(|error| {
        eprintln!("serve: cannot bind: {error}");
        std::process::exit(1);
    });
    println!(
        "serving on http://{} ({workers} workers); endpoints: \
         POST /plan /schedule /report /solve, GET /healthz /stats",
        handle.addr()
    );
    // Serve until the process is killed; the handle's Drop tears the
    // listener and workers down if the main thread ever unwinds.
    loop {
        std::thread::park();
    }
}

/// `--role worker`: resolve the coordinator address and run the claim loop
/// until the process is killed.  Never returns.
fn run_worker_role(coordinator: Option<String>, worker_id: Option<String>) -> ! {
    let Some(coordinator) = coordinator else {
        eprintln!("serve: --role worker needs --coordinator HOST:PORT");
        usage();
    };
    let addr: SocketAddr = coordinator
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .unwrap_or_else(|| {
            eprintln!("serve: cannot resolve coordinator address '{coordinator}'");
            std::process::exit(1);
        });
    let worker_id = worker_id.unwrap_or_else(|| format!("worker-{}", std::process::id()));
    println!("worker '{worker_id}' polling http://{addr}");
    let transport = HttpTransport::new(addr);
    // Unbounded: a long-lived worker survives coordinator restarts and idle
    // stretches alike, and dies only with the process.
    run_worker(&transport, &WorkerOptions::named(&worker_id));
    // An unbounded claim loop never exits; returning here means something is
    // deeply wrong, so fail the process rather than limp on.
    eprintln!("serve: worker claim loop exited unexpectedly");
    std::process::exit(1);
}
