//! End-to-end tests over a real socket: boot the server on an ephemeral
//! port, drive it with a tiny raw-TCP HTTP client, and assert on status
//! codes, cache behaviour, report identity, and clean shutdown.

use std::net::SocketAddr;
use std::time::Duration;

use engine::json::Json;
use engine::prelude::*;
use server::client;
use server::{Server, ServerConfig};
use sparsemat::gen::ProblemKind;

/// One raw HTTP exchange: returns (status, headers, body).
fn exchange(addr: SocketAddr, request: &str) -> (u16, Vec<(String, String)>, String) {
    let response = client::exchange(addr, request.as_bytes()).expect("exchange");
    (response.status, response.headers, response.body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
    let response = client::post(addr, path, body).expect("post");
    (response.status, response.headers, response.body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    let response = client::get(addr, path).expect("get");
    (response.status, response.headers, response.body)
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn grid_config(nodes: usize, seed: u64) -> String {
    EngineConfig::generated(ProblemKind::Grid2d, nodes, seed)
        .with_memory(MemoryBudget::FractionOfPeak(0.5))
        .to_json()
}

fn spawn_default() -> server::ServerHandle {
    Server::spawn(ServerConfig::default()).expect("server boots")
}

#[test]
fn healthz_and_stats_over_tcp() {
    let handle = spawn_default();
    let (status, _, body) = get(handle.addr(), "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("ok"));
    let (status, _, body) = get(handle.addr(), "/stats");
    assert_eq!(status, 200);
    let stats = Json::parse(&body).expect("stats is JSON");
    assert_eq!(
        stats.get("schema").and_then(Json::as_str),
        Some("engine_server_stats/v1")
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn cached_reports_match_cold_reports_exactly() {
    let handle = spawn_default();
    let config = grid_config(150, 3);

    let (status, cold_headers, cold_body) = post(handle.addr(), "/report", &config);
    assert_eq!(status, 200, "{cold_body}");
    assert_eq!(header(&cold_headers, "x-cache"), Some("miss"));

    let (status, hot_headers, hot_body) = post(handle.addr(), "/report", &config);
    assert_eq!(status, 200, "{hot_body}");
    assert_eq!(header(&hot_headers, "x-cache"), Some("hit"));

    // Same effective-config hash on the wire...
    assert_eq!(
        header(&cold_headers, "x-config-hash"),
        header(&hot_headers, "x-config-hash")
    );
    // ...and identical documents except for the wall-clock timings.
    assert!(client::report_identity(&cold_body).is_some());
    assert_eq!(
        client::report_identity(&cold_body),
        client::report_identity(&hot_body)
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn plan_schedule_report_share_the_cache() {
    let handle = spawn_default();
    let config = grid_config(120, 9);
    let (status, headers, _) = post(handle.addr(), "/plan", &config);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("miss"));
    for path in ["/schedule", "/report"] {
        let (status, headers, body) = post(handle.addr(), path, &config);
        assert_eq!(status, 200, "{body}");
        assert_eq!(header(&headers, "x-cache"), Some("hit"), "{path}");
    }
    let (_, _, stats_body) = get(handle.addr(), "/stats");
    let stats = Json::parse(&stats_body).unwrap();
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn malformed_requests_get_4xx_not_crashes() {
    let handle = spawn_default();
    let addr = handle.addr();

    // The three fixed parser bugs, as network payloads.
    let depth_bomb = "[".repeat(100_000);
    let (status, _, body) = post(addr, "/report", &depth_bomb);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("nesting"), "{body}");

    let truncated_escape = "{\"solver\": \"\\u12\"}";
    let (status, _, body) = post(addr, "/plan", truncated_escape);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("escape"), "{body}");

    // The surrogate-pair fix, observed end to end: an escaped pair decodes
    // to the real U+1F600, so the unknown-solver error echoes the emoji
    // (the pre-fix parser would have produced two U+FFFD instead).
    let emoji_solver =
        grid_config(100, 5).replace("\"solver\": \"minmem\"", "\"solver\": \"\\ud83d\\ude00\"");
    let (status, _, body) = post(addr, "/plan", &emoji_solver);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("😀"), "{body}");

    let raw_control = "{\"solver\": \"a\nb\"}";
    let (status, _, body) = post(addr, "/plan", raw_control);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("control"), "{body}");

    // Framing-level garbage.
    let (status, _, _) = exchange(addr, "BOGUS\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _, _) = get(addr, "/no-such-route");
    assert_eq!(status, 404);

    // The server is still alive and serving after all of that.
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let (_, _, stats_body) = get(addr, "/stats");
    let stats = Json::parse(&stats_body).unwrap();
    let responses = stats.get("responses").unwrap();
    assert!(responses.get("status_4xx").and_then(Json::as_u64).unwrap() >= 5);
    assert_eq!(responses.get("status_5xx").and_then(Json::as_u64), Some(0));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let handle = Server::spawn(ServerConfig {
        max_body_bytes: 1024,
        ..ServerConfig::default()
    })
    .unwrap();
    let big = " ".repeat(4096);
    let (status, _, _) = post(handle.addr(), "/plan", &big);
    assert_eq!(status, 413);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn capacity_evictions_show_up_in_stats() {
    let handle = Server::spawn(ServerConfig {
        cache_capacity: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    for seed in 0..4 {
        let (status, _, body) = post(handle.addr(), "/plan", &grid_config(100, seed));
        assert_eq!(status, 200, "{body}");
    }
    let (_, _, stats_body) = get(handle.addr(), "/stats");
    let stats = Json::parse(&stats_body).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("evictions").and_then(Json::as_u64), Some(2));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn ttl_expiry_forces_a_replan() {
    let handle = Server::spawn(ServerConfig {
        cache_ttl: Some(Duration::from_millis(30)),
        ..ServerConfig::default()
    })
    .unwrap();
    let config = grid_config(100, 77);
    let (_, headers, _) = post(handle.addr(), "/plan", &config);
    assert_eq!(header(&headers, "x-cache"), Some("miss"));
    std::thread::sleep(Duration::from_millis(80));
    let (_, headers, _) = post(handle.addr(), "/plan", &config);
    assert_eq!(header(&headers, "x-cache"), Some("miss"));
    let (_, _, stats_body) = get(handle.addr(), "/stats");
    let stats = Json::parse(&stats_body).unwrap();
    assert_eq!(
        stats
            .get("cache")
            .and_then(|c| c.get("expirations"))
            .and_then(Json::as_u64),
        Some(1)
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_clients_all_get_answers() {
    let handle = Server::spawn(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..16)
            .map(|i| {
                scope.spawn(move || {
                    let config = grid_config(100, (i % 4) as u64);
                    let (status, _, body) = post(addr, "/report", &config);
                    assert_eq!(status, 200, "{body}");
                })
            })
            .collect();
        for task in tasks {
            task.join().expect("client thread");
        }
    });
    let (_, _, stats_body) = get(addr, "/stats");
    let stats = Json::parse(&stats_body).unwrap();
    // 4 distinct configurations, 16 requests: at least 12 cache hits.
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(hits >= 12, "only {hits} cache hits");
    // Every client finished, so the only in-flight request is the /stats
    // request reporting itself.
    assert_eq!(stats.get("in_flight").and_then(Json::as_u64), Some(1));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn deadlines_expire_to_504_with_retry_after_and_recovery() {
    let handle = spawn_default();
    let addr = handle.addr();
    let config = grid_config(10_000, 21);
    let expired = client::post_with_headers(addr, "/report", &[("X-Deadline-Ms", "1")], &config)
        .expect("exchange");
    assert_eq!(expired.status, 504, "{}", expired.body);
    assert_eq!(expired.header("retry-after"), Some("1"));
    // The cancelled plan left no wedged cache key: the retrying client gets
    // a full answer for the same configuration.
    let retry = client::post_with_retry(addr, "/report", &config, 3, Duration::from_millis(50))
        .expect("retry");
    assert_eq!(retry.status, 200, "{}", retry.body);
    // The cancellation is visible in /stats.
    let (_, _, stats_body) = get(addr, "/stats");
    let stats = Json::parse(&stats_body).unwrap();
    assert!(stats
        .get("cancelled")
        .and_then(|c| c.get("total"))
        .and_then(Json::as_u64)
        .is_some_and(|total| total >= 1));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn prebuilt_tree_configs_run_end_to_end() {
    let handle = spawn_default();
    let config = EngineConfig::prebuilt(treemem::gadgets::harpoon(4, 400, 1))
        .with_memory(MemoryBudget::FractionOfPeak(0.0))
        .to_json();
    let (status, _, body) = post(handle.addr(), "/report", &config);
    assert_eq!(status, 200, "{body}");
    let report = Json::parse(&body).unwrap();
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some("engine_report/v1")
    );
    assert!(report.get("io_volume").and_then(Json::as_u64).unwrap() > 0);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn solve_round_trips_over_tcp() {
    let handle = spawn_default();
    let config = EngineConfig::generated(ProblemKind::Grid2d, 120, 11)
        .with_numeric(true)
        .to_json();
    let (status, headers, body) = post(handle.addr(), "/report", &config);
    assert_eq!(status, 200, "{body}");
    let hash = header(&headers, "x-config-hash")
        .expect("hash header")
        .to_string();

    // Hot solve against the cached factor.
    let solve_body = format!("{{\"config_hash\": \"{hash}\", \"count\": 2, \"seed\": 3}}");
    let (status, headers, body) = post(handle.addr(), "/solve", &solve_body);
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    let json = Json::parse(&body).expect("solve response is JSON");
    assert_eq!(json.get("rhs_count").and_then(Json::as_usize), Some(2));
    assert!(json.get("max_residual").and_then(Json::as_f64).unwrap() < 1e-8);

    // Unknown hash: 404 with a miss disposition.
    let (status, headers, _) = post(handle.addr(), "/solve", "{\"config_hash\": \"nope\"}");
    assert_eq!(status, 404);
    assert_eq!(header(&headers, "x-cache"), Some("miss"));

    // The factor cache shows up in /stats.
    let (_, _, stats_body) = get(handle.addr(), "/stats");
    let stats = Json::parse(&stats_body).unwrap();
    let factor_cache = stats.get("factor_cache").expect("factor_cache section");
    assert_eq!(factor_cache.get("hits").and_then(Json::as_u64), Some(1));
    handle.shutdown().expect("clean shutdown");
}

/// Compat pin: scripts and dashboards predating the byte-budget redesign
/// parse the top-level `cache` / `factor_cache` objects; the versioned
/// `caches` object rides alongside, never instead.
#[test]
fn stats_keeps_legacy_cache_fields_alongside_versioned_caches() {
    let handle = spawn_default();
    let config = grid_config(150, 41);
    // One cold plan and one repeat, so the plan cache records both kinds.
    for _ in 0..2 {
        let (status, _, body) = post(handle.addr(), "/plan", &config);
        assert_eq!(status, 200, "{body}");
    }
    let (_, _, body) = get(handle.addr(), "/stats");
    let stats = Json::parse(&body).expect("stats is JSON");

    // The pre-redesign top-level fields, exactly where they always were.
    let cache = stats.get("cache").expect("legacy cache section");
    for field in [
        "hits",
        "misses",
        "evictions",
        "expirations",
        "entries",
        "capacity",
    ] {
        assert!(
            cache.get(field).and_then(Json::as_u64).is_some(),
            "legacy cache.{field} went missing"
        );
    }
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    let factor = stats
        .get("factor_cache")
        .expect("legacy factor_cache section");
    for field in ["hits", "misses", "evictions", "entries", "capacity"] {
        assert!(
            factor.get(field).and_then(Json::as_u64).is_some(),
            "legacy factor_cache.{field} went missing"
        );
    }

    // The versioned object: per-cache policy, byte accounting, tenants.
    let caches = stats.get("caches").expect("caches section");
    assert_eq!(
        caches.get("schema").and_then(Json::as_str),
        Some("engine_server_caches/v1")
    );
    let plan = caches.get("plan").expect("caches.plan");
    assert!(plan.get("policy").and_then(Json::as_str).is_some());
    assert_eq!(plan.get("hits").and_then(Json::as_u64), Some(1));
    assert!(plan.get("bytes_used").and_then(Json::as_u64).unwrap() > 0);
    let public = plan
        .get("tenants")
        .and_then(|t| t.get("public"))
        .expect("default tenant usage");
    assert_eq!(public.get("hits").and_then(Json::as_u64), Some(1));
    assert!(caches.get("factor").is_some());
    handle.shutdown().expect("clean shutdown");
}

/// Tenant isolation over real HTTP: with byte budgets, quotas, and the
/// fair-share floor armed, one tenant's flood of unique configurations
/// cannot starve another tenant's hot set, and nobody exceeds the quota.
#[test]
fn tenant_quotas_and_floor_hold_over_http() {
    // Budgets derived from a measured plan footprint so the numbers track
    // real plan sizes instead of hardcoding them.
    let plan_bytes = Engine::new()
        .plan(&EngineConfig::generated(ProblemKind::Grid2d, 100, 1))
        .expect("probe plan")
        .approx_heap_bytes()
        .max(1024);
    let quota = plan_bytes * 6;
    let handle = Server::spawn(ServerConfig {
        cache: server::CacheSettings {
            policy: Some("GDSF".to_string()),
            plan_bytes: Some(plan_bytes * 16),
            factor_bytes: None,
            tenant_quota_bytes: Some(quota),
            tenant_floor: 0.3,
        },
        ..ServerConfig::default()
    })
    .expect("server boots");
    let addr = handle.addr();

    let hot: Vec<String> = (0..3)
        .map(|seed| EngineConfig::generated(ProblemKind::Grid2d, 100, 500 + seed).to_json())
        .collect();
    for round in 0..8u64 {
        for config in &hot {
            let response =
                client::post_with_headers(addr, "/plan", &[("X-Tenant", "zeta")], config)
                    .expect("zeta /plan");
            assert_eq!(response.status, 200, "{}", response.body);
        }
        for burst in 0..2u64 {
            let config =
                EngineConfig::generated(ProblemKind::Grid2d, 100, 9_000 + round * 10 + burst)
                    .to_json();
            let response =
                client::post_with_headers(addr, "/plan", &[("X-Tenant", "acme")], &config)
                    .expect("acme /plan");
            assert_eq!(response.status, 200, "{}", response.body);
        }
    }
    // Malformed tenant names are rejected before any planning happens.
    let response = client::post_with_headers(addr, "/plan", &[("X-Tenant", "bad tenant")], &hot[0])
        .expect("transport");
    assert_eq!(response.status, 400);

    let (_, _, body) = get(addr, "/stats");
    let stats = Json::parse(&body).expect("stats is JSON");
    let tenants = stats
        .get("caches")
        .and_then(|c| c.get("plan"))
        .and_then(|p| p.get("tenants"))
        .expect("per-tenant usage");
    for tenant in ["acme", "zeta"] {
        let usage = tenants.get(tenant).expect("tenant tracked");
        let bytes = usage.get("bytes").and_then(Json::as_u64).unwrap();
        assert!(
            bytes <= quota,
            "tenant {tenant} holds {bytes} bytes over the {quota}-byte quota"
        );
    }
    let zeta_hits = tenants
        .get("zeta")
        .and_then(|t| t.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        zeta_hits > 0,
        "zeta's hot set never hit despite acme's flood"
    );
    handle.shutdown().expect("clean shutdown");
}
