//! Chaos and retry tests for distributed execution over real sockets.
//!
//! These live in their own integration-test binary because the fault
//! registry is process-global: a `sleep@parexec:task` rule armed here would
//! stall any other test that happens to factor in parallel.  Process
//! isolation (one binary = one process) keeps the blast radius to this
//! file.

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use engine::json::Json;
use engine::prelude::*;
use server::client;
use server::worker::{run_worker, HttpTransport, WorkerOptions, WorkerSummary};
use server::{Server, ServerConfig};
use sparsemat::gen::ProblemKind;

/// Reserve an ephemeral port, then free it: the classic boot-race setup.
/// The port can in principle be re-bound by another process in the gap, but
/// loopback ephemeral churn makes that vanishingly rare in practice.
fn probed_free_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    listener.local_addr().expect("probe addr")
}

/// A distributed numeric grid configuration with a body-level deadline so a
/// wedged test fails rather than hangs.
fn distributed_body(nodes: usize, seed: u64, tasks: usize, lease_ms: u64) -> String {
    let config = EngineConfig::generated(ProblemKind::Grid2d, nodes, seed)
        .with_numeric(true)
        .with_distributed(engine::DistributedConfig::with_tasks(tasks).with_lease_ms(lease_ms));
    format!("{{\"deadline_ms\": 60000, {}", &config.to_json()[1..])
}

/// Satellite 2 regression: a worker stalled past its lease by an injected
/// `sleep@parexec:task` fault must not wedge the job — the lease expires on
/// the monotonic clock, the task is re-issued to the healthy worker, the
/// report completes, and the sleeper's late contribution is fenced off
/// (stale epoch or already-removed job), never merged.
#[test]
fn injected_sleep_past_lease_reissues_the_task_and_fences_the_sleeper() {
    // Stall the *first* task claim in this process for 3.5 s against a 1 s
    // lease.  The lease must stay comfortably above debug-build subtree
    // factoring time or every healthy contribution would itself go stale.
    engine::faultinject::install(
        engine::faultinject::parse_plan("sleep:3500@parexec:task").expect("plan parses"),
    );

    let handle = Server::spawn(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server boots");
    let addr = handle.addr();
    let body = distributed_body(400, 5, 2, 1_000);

    let report = std::thread::spawn(move || client::post(addr, "/report", &body).expect("report"));
    // Two workers race for the two tasks; whichever claims first eats the
    // injected sleep.  Generous idle bounds: both must outlive the stall.
    let workers: Vec<_> = ["chaos-a", "chaos-b"]
        .into_iter()
        .map(|name| {
            std::thread::spawn(move || {
                run_worker(
                    &HttpTransport::new(addr),
                    &WorkerOptions::named(name).exit_when_idle(100),
                )
            })
        })
        .collect();

    let report = report.join().expect("report thread");
    assert_eq!(report.status, 200, "{}", report.body);
    let json = Json::parse(&report.body).expect("report is JSON");
    let distributed = json.get("distributed").expect("distributed section");
    assert_eq!(
        distributed.get("subtree_count").and_then(Json::as_u64),
        Some(2)
    );
    assert!(
        distributed
            .get("lease_expiries")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1,
        "the stalled worker's lease must expire"
    );
    assert!(
        distributed
            .get("tasks_requeued")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1,
        "the expired task must be re-issued"
    );

    let summaries: Vec<WorkerSummary> = workers
        .into_iter()
        .map(|worker| worker.join().expect("worker thread"))
        .collect();
    assert_eq!(engine::faultinject::injected(), 1, "exactly one stall");
    engine::faultinject::clear();

    // Both tasks completed exactly once across the fleet, and the sleeper's
    // late frame was fenced: rejected as stale (409) if the job was still
    // live, or refused outright (404) if it had already been merged and
    // retired.  `tasks_completed` counts only accepted contributions, so a
    // double merge would show up as a third completion.
    let completed: u64 = summaries.iter().map(|s| s.tasks_completed).sum();
    let fenced: u64 = summaries
        .iter()
        .map(|s| s.stale_rejections + s.transport_errors)
        .sum();
    assert_eq!(completed, 2, "{summaries:?}");
    assert!(
        fenced >= 1,
        "late contribution must be fenced: {summaries:?}"
    );
    assert_eq!(summaries.iter().map(|s| s.factor_errors).sum::<u64>(), 0);

    // No non-injected failure anywhere: the only 5xx the server may emit
    // here is none at all, and the cluster counters reconcile (zero
    // orphaned leases).
    let stats = client::get(addr, "/stats").expect("stats");
    let stats = Json::parse(&stats.body).expect("stats is JSON");
    assert_eq!(
        stats
            .get("responses")
            .and_then(|r| r.get("status_5xx"))
            .and_then(Json::as_u64),
        Some(0)
    );
    let cluster = stats.get("cluster").expect("cluster section");
    let claimed = cluster.get("tasks_claimed").and_then(Json::as_u64).unwrap();
    let completed = cluster
        .get("tasks_completed")
        .and_then(Json::as_u64)
        .unwrap();
    let expiries = cluster
        .get("lease_expiries")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(claimed, completed + expiries, "orphaned leases");
    assert_eq!(
        cluster.get("jobs_completed").and_then(Json::as_u64),
        cluster.get("jobs_started").and_then(Json::as_u64)
    );
    handle.shutdown().expect("clean shutdown");
}

/// Satellite 1: a worker started *before* its coordinator must ride out the
/// connection-refused window on retries and succeed once the listener is
/// up, instead of dying on the first refusal.
#[test]
fn post_with_retry_rides_out_a_late_booting_coordinator() {
    let addr = probed_free_addr();
    let boot = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        Server::spawn(ServerConfig {
            addr: addr.to_string(),
            ..ServerConfig::default()
        })
        .expect("late boot")
    });
    let config = EngineConfig::generated(ProblemKind::Grid2d, 100, 1).to_json();
    // Backoff doubles from 10 ms, so a dozen attempts cover the 300 ms boot
    // gap many times over.
    let response = client::post_with_retry(addr, "/plan", &config, 12, Duration::from_millis(500))
        .expect("retries reach the booted server");
    assert_eq!(response.status, 200, "{}", response.body);
    let handle = boot.join().expect("boot thread");
    handle.shutdown().expect("clean shutdown");
}

/// Satellite 1: when every attempt dies in transport, the error surfaces
/// the retry-count cap so operators can tell exhaustion from a one-shot
/// failure.
#[test]
fn post_with_retry_exhaustion_names_the_attempt_count() {
    let addr = probed_free_addr();
    let error = client::post_with_retry(addr, "/plan", "{}", 3, Duration::from_millis(20))
        .expect_err("nothing is listening");
    let message = error.to_string();
    assert!(message.contains("giving up after 3 attempts"), "{message}");
}
