//! Cross-structure concurrency stress: the thread-sanitizer anchor.
//!
//! Each test races one of the serving layer's shared structures from 4+
//! threads the way production traffic does — plan-cache single-flight
//! stampedes, factor-cache deposit/lookup/eviction races, and job-registry
//! claims racing lease expiry — and then checks the counters reconcile.
//! The nightly `sanitizers` CI job runs exactly this file under
//! `-Zsanitizer=thread`, so keep every test free of deliberate data races
//! and bounded in wall-clock time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use distrib::{contribution_frame, ClaimReply, ClusterStats, Contribution, JobRegistry, JobSpec};
use engine::prelude::*;
use engine::PlanCache;
use server::factors::FactorCache;

const THREADS: usize = 6;

fn banded_config(n: usize, seed: u64) -> EngineConfig {
    EngineConfig::generated(sparsemat::gen::ProblemKind::Banded, n, seed)
}

#[test]
#[cfg_attr(miri, ignore = "spawns timed OS threads; tsan covers this file")]
fn plan_cache_single_flight_survives_a_stampede() {
    let engine = Engine::new();
    let cache = PlanCache::new(2, None);
    let config = banded_config(32, 7);

    // Stampede: every thread asks for the same configuration at once.  The
    // single-flight gate must hand every caller the same plan while the
    // ordering/symbolic stages run at most a handful of times.
    let hits = AtomicU64::new(0);
    let mut hashes = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            joins.push(scope.spawn(|| {
                let mut local = Vec::new();
                for _ in 0..50 {
                    let (plan, hit) = cache
                        .get_or_plan_with_cancel(&engine, &config, None)
                        .expect("planning a well-formed config succeeds");
                    if hit {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    local.push(plan.config_hash().to_string());
                }
                local
            }));
        }
        for join in joins {
            hashes.extend(join.join().expect("stampede thread panicked"));
        }
    });

    // Everyone resolved the identical plan.
    assert_eq!(hashes.len(), THREADS * 50);
    assert!(hashes.windows(2).all(|pair| pair[0] == pair[1]));
    // The lookups reconcile: every call was either a hit or a miss, and
    // once the burst is over the entry is resident, so a fresh lookup hits.
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, (THREADS * 50) as u64);
    assert!(stats.misses < (THREADS * 50) as u64);
    let (_, hit) = cache
        .get_or_plan_with_cancel(&engine, &config, None)
        .unwrap();
    assert!(hit, "the settled entry must serve follow-up lookups");
}

#[test]
#[cfg_attr(miri, ignore = "spawns timed OS threads; tsan covers this file")]
fn factor_cache_deposits_race_lookups_and_eviction() {
    // Deposits, lookups, and LRU eviction race on a cache smaller than the
    // working set; every resolved factor must still solve correctly.
    let engine = Engine::new();
    let cache = FactorCache::new(2);
    let factors: Vec<Arc<FactorHandle>> = (0..4)
        .map(|seed| {
            let config = banded_config(12, seed).with_numeric(true);
            let (_, handle) = engine
                .plan(&config)
                .unwrap()
                .schedule(&engine)
                .unwrap()
                .execute_with_factor(&engine)
                .unwrap();
            Arc::new(handle.unwrap())
        })
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let cache = &cache;
            let factors = &factors;
            scope.spawn(move || {
                for round in 0..150 {
                    let pick = (worker * 5 + round * 3) % factors.len();
                    let key = format!("hash-{pick}");
                    if (worker + round) % 3 == 0 {
                        cache.insert(&key, Arc::clone(&factors[pick]));
                    } else if let Some(factor) = cache.get(&key) {
                        let rhs = factor.generated_rhs(1, round as u64 + 1);
                        let mut solution = rhs.clone();
                        factor.solve_batch(&mut solution).expect("factor solves");
                        assert!(factor.max_residual(&rhs, &solution) < 1e-8);
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert!(stats.entries <= 2, "over capacity: {}", stats.entries);
    assert!(stats.hits + stats.misses > 0);
}

#[test]
#[cfg_attr(miri, ignore = "spawns timed OS threads; tsan covers this file")]
fn job_registry_claims_race_contributions_and_lease_expiry() {
    // Four workers race to drain one job while a fifth behavior — silently
    // abandoning a lease — forces the expiry/re-issue path.  Once the job
    // drains, every claim must be accounted for as either an accepted
    // contribution or a reaped lease.
    let engine = Engine::new();
    // A wide grid has a bushy elimination tree, so the cut really shards.
    let config = EngineConfig::generated(sparsemat::gen::ProblemKind::Grid2dWide, 64, 11)
        .with_numeric(true)
        .with_distributed(DistributedConfig::with_tasks(4));
    let plan = engine.plan(&config).unwrap();
    let cut = plan
        .schedule(&engine)
        .unwrap()
        .distributed_cut(&engine)
        .unwrap();
    let tasks = cut.task_count();
    assert!(tasks >= 2, "the cut must shard the problem");
    let registry = JobRegistry::new(Arc::new(ClusterStats::new()));
    let job = registry.register(JobSpec {
        config_json: "{}".to_string(),
        lease_ms: 25,
        task_orders: (0..tasks)
            .map(|task| cut.task_order(task).to_vec())
            .collect(),
        task_peaks: (0..tasks).map(|task| cut.task_peak_entries(task)).collect(),
        budget_entries: None,
    });

    let abandoned = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let registry = &registry;
            let plan = &plan;
            let abandoned = &abandoned;
            scope.spawn(move || {
                let name = format!("w-{worker}");
                loop {
                    match registry.claim(&name) {
                        ClaimReply::Idle => break,
                        ClaimReply::Wait { retry_ms } => {
                            std::thread::sleep(Duration::from_millis(retry_ms.clamp(1, 20)));
                        }
                        ClaimReply::Task(task) => {
                            // Worker 0 walks away from its first lease: the
                            // deadline reaper must re-issue that task.
                            if worker == 0 && abandoned.fetch_add(1, Ordering::Relaxed) == 0 {
                                continue;
                            }
                            let parts = plan
                                .factor_subtree(&task.order, None)
                                .expect("subtree factors");
                            let frame = contribution_frame(
                                task.job, task.task, task.epoch, &name, 0.01, &parts,
                            );
                            let bytes = frame.len() as u64;
                            let contribution = Contribution::from_frame(&frame).unwrap();
                            // Stale epochs (our lease expired mid-factor) are
                            // expected under contention; the re-issued lease
                            // recomputes identical bits, so dropping is fine.
                            let _ = registry.contribute(contribution, bytes);
                        }
                    }
                }
            });
        }
    });

    let (parts, runtime) = job
        .wait_for_completion(Some(10_000), None)
        .expect("the job drains");
    assert_eq!(parts.len(), tasks);
    let snapshot = registry.stats().snapshot();
    assert_eq!(
        snapshot.tasks_claimed,
        snapshot.tasks_completed + snapshot.lease_expiries,
        "every claim ends in a contribution or an expiry"
    );
    assert_eq!(snapshot.tasks_completed, tasks as u64);
    assert!(runtime.workers >= 1);
    assert!(
        snapshot.lease_expiries >= 1,
        "the abandoned lease must have been reaped"
    );
}
