//! # prng — self-contained deterministic pseudo-random numbers
//!
//! The build environment of this repository is fully offline, so the `rand`
//! crate cannot be used.  This crate provides the small slice of its API that
//! the workspace needs — a seedable generator plus uniform sampling over
//! integer and float ranges — with the same call-site shape
//! (`StdRng::seed_from_u64`, `rng.gen_range(lo..=hi)`, `rng.gen::<f64>()`),
//! so swapping the real `rand` back in later is a one-line import change.
//!
//! The generator is xoshiro256++ seeded through splitmix64, which passes the
//! usual statistical test batteries and is more than adequate for generating
//! test instances.  Streams are stable across platforms and releases of this
//! crate: experiment corpora and property tests are reproducible from their
//! seeds alone.

use std::ops::{Range, RangeInclusive};

/// Splitmix64 step, used to expand a 64-bit seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// The name mirrors `rand::rngs::StdRng` so call sites read the same; the
/// algorithm is unrelated to the real `StdRng` (which is ChaCha-based) and
/// produces different streams.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seed the generator from a single 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` below `bound` (> 0), by Lemire-style rejection.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the distribution exactly uniform.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone {
                return hi;
            }
        }
    }
}

/// Types that can be drawn uniformly from the generator's full output.
pub trait Standard: Sized {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly; implemented for half-open and
/// inclusive ranges of the integer and float types the workspace uses.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut StdRng) -> $ty {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut StdRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The sampling methods, as an extension trait so call sites read exactly
/// like `rand::Rng` usage.
pub trait Rng {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(1..=max)`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;

    /// Uniform sample of a whole type, e.g. `rng.gen::<f64>()` in `[0, 1)`.
    fn gen<T: Standard>(&mut self) -> T;

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

/// Re-export module mirroring `rand::rngs`, so `use prng::rngs::StdRng`
/// also works.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn single_point_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }
}
