//! Cross-crate integration tests: the full pipeline from a sparse matrix to
//! traversals, out-of-core schedules and the numeric factorization, driven
//! through the `engine` facade.

use engine::prelude::*;
use minio::check_out_of_core;
use multifrontal::numeric::SymbolicStructure;
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::{column_counts, elimination_tree};

/// The full symbolic pipeline produces trees on which every registered
/// MinMemory solver satisfies all the paper's ordering relations, for every
/// problem kind and every ordering method.
#[test]
fn minmemory_invariants_across_the_whole_corpus() {
    let engine = Engine::new();
    for kind in ProblemKind::ALL {
        for method in OrderingMethod::ALL {
            for allowance in [1usize, 4] {
                let config = EngineConfig::generated(kind, 200, 3)
                    .with_ordering(method)
                    .with_amalgamation(allowance);
                let plan = engine.plan(&config).unwrap();
                let tree = plan.tree();
                let context = format!("{} / {} / a{}", kind.name(), method.name(), allowance);
                let results: Vec<_> = engine
                    .solvers()
                    .iter()
                    .filter(|s| s.supports(tree))
                    .map(|s| {
                        let (result, _) = plan.solve(&engine, s.name()).unwrap();
                        (s.name(), s.is_exact(), result)
                    })
                    .collect();
                let optimal = results
                    .iter()
                    .find(|(_, exact, _)| *exact)
                    .map(|(_, _, r)| r.peak)
                    .expect("an exact solver always runs");
                for (name, exact, result) in &results {
                    if *exact {
                        assert_eq!(
                            result.peak, optimal,
                            "{context}: exact solver {name} disagrees"
                        );
                    } else {
                        assert!(
                            result.peak >= optimal,
                            "{context}: optimal above inexact solver {name}"
                        );
                    }
                    assert!(
                        result.peak >= tree.max_mem_req(),
                        "{context}: {name} below MemReq bound"
                    );
                    assert_eq!(
                        result.peak,
                        result.traversal.peak_memory(tree).unwrap(),
                        "{context}: {name} reported peak does not match the traversal"
                    );
                }
                let peak_of = |solver: &str| {
                    results
                        .iter()
                        .find(|(name, _, _)| *name == solver)
                        .map(|(_, _, r)| r.peak)
                        .expect("built-in solver ran")
                };
                assert!(
                    peak_of("postorder") <= peak_of("natural"),
                    "{context}: best postorder above natural"
                );
            }
        }
    }
}

/// The elimination tree and column counts underlying an engine plan agree
/// with the factor structure computed independently by the multifrontal
/// crate.
#[test]
fn symbolic_structure_consistency() {
    let engine = Engine::new();
    let config = EngineConfig::generated(ProblemKind::Grid3d, 350, 5)
        .with_ordering(OrderingMethod::MinimumDegree);
    let plan = engine.plan(&config).unwrap();
    let permuted = plan.permuted_pattern().expect("matrix source");
    let etree = elimination_tree(permuted);
    let counts = column_counts(permuted, &etree);
    let structure = SymbolicStructure::from_pattern(permuted);
    assert_eq!(structure.column_counts(), counts);
    assert_eq!(structure.etree.parents(), etree.parents());
}

/// Out-of-core schedules produced by every registered policy validate under
/// the independent Algorithm-2 checker on assembly trees, and never beat the
/// divisible lower bound.  One plan serves every (memory, policy) cell.
#[test]
fn minio_policies_are_consistent_on_assembly_trees() {
    let engine = Engine::new();
    assert!(
        engine.policies().len() >= 9,
        "paper heuristics plus cache-inspired policies"
    );
    let config = EngineConfig::generated(ProblemKind::Random, 300, 11)
        .with_ordering(OrderingMethod::MinimumDegree)
        .with_amalgamation(1)
        .with_solver("minmem");
    let plan = engine.plan(&config).unwrap();
    let tree = plan.tree();
    for step in 0..3 {
        let fraction = step as f64 / 3.0;
        for policy in engine.policies().names() {
            let schedule = plan
                .schedule_with(
                    &engine,
                    ScheduleSpec::default()
                        .policy(&policy)
                        .memory(MemoryBudget::FractionOfPeak(fraction)),
                )
                .unwrap();
            let run = schedule.io_run();
            let check = check_out_of_core(
                tree,
                schedule.traversal(),
                &run.schedule,
                schedule.memory_budget(),
            )
            .unwrap();
            assert_eq!(check.io_volume, run.io_volume, "{policy}");
            assert!(run.io_volume >= schedule.divisible_bound(), "{policy}");
            assert!(run.peak_memory <= schedule.memory_budget(), "{policy}");
        }
    }
}

/// The numeric multifrontal factorization driven by the optimal traversal of
/// the per-column model uses exactly the memory the model predicts, never
/// more than the best postorder, and solves linear systems correctly.
#[test]
fn numeric_factorization_matches_the_model_end_to_end() {
    let engine = Engine::new();
    let base = EngineConfig::generated(ProblemKind::Grid2d, 400, 9)
        .with_ordering(OrderingMethod::Natural)
        .with_numeric(true);
    let optimal_run = engine
        .run(&base.clone().with_solver("minmem"))
        .unwrap()
        .numeric
        .expect("numeric stage ran");
    let postorder_run = engine
        .run(&base.with_solver("postorder"))
        .unwrap()
        .numeric
        .expect("numeric stage ran");

    for run in [&optimal_run, &postorder_run] {
        assert_eq!(run.measured_peak_entries as i64, run.model_peak_entries);
        assert!(run.solve_error < 1e-7, "solve error {}", run.solve_error);
    }
    assert!(optimal_run.measured_peak_entries <= postorder_run.measured_peak_entries);
    assert_eq!(optimal_run.factor_nnz, postorder_run.factor_nnz);
}

/// Amalgamation trades tree size against node granularity but never changes
/// the total amount of factor data hanging below the root by more than the
/// grouping effect: sanity-check a few global invariants across allowances,
/// derived from one plan via `reamalgamate`.
#[test]
fn amalgamation_invariants_across_allowances() {
    let engine = Engine::new();
    let base = engine
        .plan(
            &EngineConfig::generated(ProblemKind::Grid2d, 300, 21)
                .with_ordering(OrderingMethod::NestedDissection)
                .with_amalgamation(1),
        )
        .unwrap();
    let matrix_n = base.matrix_n();
    let mut previous_nodes = usize::MAX;
    for allowance in [1usize, 2, 4, 16] {
        let plan = base.reamalgamate(allowance).unwrap();
        let assembly = plan.assembly().expect("matrix source");
        // Tree sizes shrink (weakly) as the allowance grows.
        assert!(assembly.len() <= previous_nodes);
        previous_nodes = assembly.len();
        // Every column of the matrix appears in exactly one group.
        let grouped: usize = assembly.eta.iter().sum();
        assert_eq!(grouped, matrix_n);
        // Weights follow the paper's formulas.
        for g in 0..assembly.len() {
            if assembly.groups[g].is_empty() {
                continue;
            }
            let eta = assembly.eta[g] as i64;
            let mu = assembly.mu[g] as i64;
            assert_eq!(assembly.tree.n(g), eta * eta + 2 * eta * (mu - 1));
        }
    }
}
