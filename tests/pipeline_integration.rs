//! Cross-crate integration tests: the full pipeline from a sparse matrix to
//! traversals, out-of-core schedules and the numeric factorization.

use minio::{check_out_of_core, divisible_lower_bound, schedule_io_with, PolicyRegistry};
use multifrontal::memory::per_column_model;
use multifrontal::numeric::SymbolicStructure;
use multifrontal::{instrumented_factorization, solve};
use ordering::OrderingMethod;
use sparsemat::gen::{spd_matrix_from_pattern, ProblemKind};
use symbolic::{assembly_tree_for, column_counts, elimination_tree};
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::solver::SolverRegistry;

/// The full symbolic pipeline produces trees on which every registered
/// MinMemory solver satisfies all the paper's ordering relations, for every
/// problem kind and every ordering method.
#[test]
fn minmemory_invariants_across_the_whole_corpus() {
    let solvers = SolverRegistry::with_builtin();
    for kind in ProblemKind::ALL {
        let pattern = kind.generate(200, 3);
        for method in OrderingMethod::ALL {
            for allowance in [1usize, 4] {
                let assembly = assembly_tree_for(&pattern, method, allowance);
                let tree = &assembly.tree;
                let context = format!("{} / {} / a{}", kind.name(), method.name(), allowance);
                let results: Vec<_> = solvers
                    .iter()
                    .filter(|s| s.supports(tree))
                    .map(|s| (s.name(), s.is_exact(), s.solve(tree)))
                    .collect();
                let optimal = results
                    .iter()
                    .find(|(_, exact, _)| *exact)
                    .map(|(_, _, r)| r.peak)
                    .expect("an exact solver always runs");
                for (name, exact, result) in &results {
                    if *exact {
                        assert_eq!(
                            result.peak, optimal,
                            "{context}: exact solver {name} disagrees"
                        );
                    } else {
                        assert!(
                            result.peak >= optimal,
                            "{context}: optimal above inexact solver {name}"
                        );
                    }
                    assert!(
                        result.peak >= tree.max_mem_req(),
                        "{context}: {name} below MemReq bound"
                    );
                    assert_eq!(
                        result.peak,
                        result.traversal.peak_memory(tree).unwrap(),
                        "{context}: {name} reported peak does not match the traversal"
                    );
                }
                let peak_of = |solver: &str| {
                    results
                        .iter()
                        .find(|(name, _, _)| *name == solver)
                        .map(|(_, _, r)| r.peak)
                        .expect("built-in solver ran")
                };
                assert!(
                    peak_of("postorder") <= peak_of("natural"),
                    "{context}: best postorder above natural"
                );
            }
        }
    }
}

/// The elimination tree and column counts agree with the factor structure
/// computed independently by the multifrontal crate.
#[test]
fn symbolic_structure_consistency() {
    let pattern = ProblemKind::Grid3d.generate(350, 5);
    let perm = OrderingMethod::MinimumDegree.order(&pattern);
    let permuted = perm.apply(&pattern);
    let etree = elimination_tree(&permuted);
    let counts = column_counts(&permuted, &etree);
    let structure = SymbolicStructure::from_pattern(&permuted);
    assert_eq!(structure.column_counts(), counts);
    assert_eq!(structure.etree.parents(), etree.parents());
}

/// Out-of-core schedules produced by every registered policy validate under
/// the independent Algorithm-2 checker on assembly trees, and never beat the
/// divisible lower bound.
#[test]
fn minio_policies_are_consistent_on_assembly_trees() {
    let policies = PolicyRegistry::with_builtin();
    assert!(
        policies.len() >= 9,
        "paper heuristics plus cache-inspired policies"
    );
    let pattern = ProblemKind::Random.generate(300, 11);
    let assembly = assembly_tree_for(&pattern, OrderingMethod::MinimumDegree, 1);
    let tree = &assembly.tree;
    let optimal = min_mem(tree);
    let lower = tree.max_mem_req();
    for step in 0..3 {
        let memory = lower + (optimal.peak - lower) * step / 3;
        let bound = divisible_lower_bound(tree, &optimal.traversal, memory).unwrap();
        for policy in policies.iter() {
            let name = policy.name();
            let run = schedule_io_with(tree, &optimal.traversal, memory, policy).unwrap();
            let check = check_out_of_core(tree, &optimal.traversal, &run.schedule, memory).unwrap();
            assert_eq!(check.io_volume, run.io_volume, "{name}");
            assert!(run.io_volume >= bound, "{name}");
            assert!(run.peak_memory <= memory, "{name}");
        }
    }
}

/// The numeric multifrontal factorization driven by the optimal traversal of
/// the per-column model uses exactly the memory the model predicts, and it
/// solves linear systems correctly.
#[test]
fn numeric_factorization_matches_the_model_end_to_end() {
    let pattern = ProblemKind::Grid2d.generate(400, 9);
    let matrix = spd_matrix_from_pattern(&pattern, 9);
    let structure = SymbolicStructure::from_pattern(&matrix.pattern());
    let model = per_column_model(&structure);

    let optimal_order: Vec<usize> = min_mem(&model).traversal.reversed().into_order();
    let postorder_order: Vec<usize> = best_postorder(&model).traversal.reversed().into_order();
    let optimal_run = instrumented_factorization(&matrix, Some(&optimal_order)).unwrap();
    let postorder_run = instrumented_factorization(&matrix, Some(&postorder_order)).unwrap();

    assert_eq!(
        optimal_run.measured_peak_entries as i64,
        optimal_run.model_peak_entries
    );
    assert_eq!(
        postorder_run.measured_peak_entries as i64,
        postorder_run.model_peak_entries
    );
    assert!(optimal_run.measured_peak_entries <= postorder_run.measured_peak_entries);

    let expected: Vec<f64> = (0..matrix.n())
        .map(|i| ((i * 7) % 13) as f64 - 6.0)
        .collect();
    let rhs = matrix.multiply(&expected);
    let solution = solve(&optimal_run.factor, &rhs);
    let error = solution
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(error < 1e-7, "solve error {error}");
}

/// Amalgamation trades tree size against node granularity but never changes
/// the total amount of factor data hanging below the root by more than the
/// grouping effect: sanity-check a few global invariants across allowances.
#[test]
fn amalgamation_invariants_across_allowances() {
    let pattern = ProblemKind::Grid2d.generate(300, 21);
    let mut previous_nodes = usize::MAX;
    for allowance in [1usize, 2, 4, 16] {
        let assembly = assembly_tree_for(&pattern, OrderingMethod::NestedDissection, allowance);
        // Tree sizes shrink (weakly) as the allowance grows.
        assert!(assembly.len() <= previous_nodes);
        previous_nodes = assembly.len();
        // Every column of the matrix appears in exactly one group.
        let grouped: usize = assembly.eta.iter().sum();
        assert_eq!(grouped, pattern.n());
        // Weights follow the paper's formulas.
        for g in 0..assembly.len() {
            if assembly.groups[g].is_empty() {
                continue;
            }
            let eta = assembly.eta[g] as i64;
            let mu = assembly.mu[g] as i64;
            assert_eq!(assembly.tree.n(g), eta * eta + 2 * eta * (mu - 1));
        }
    }
}
