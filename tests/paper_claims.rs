//! Tests that encode the paper's headline claims directly, so the test suite
//! documents what the reproduction reproduces.

use minio::{divisible_lower_bound, schedule_io, EvictionPolicy};
use treemem::gadgets::{
    harpoon, harpoon_optimal_peak, harpoon_postorder_peak, harpoon_tower, two_partition_gadget,
};
use treemem::liu::liu_exact;
use treemem::minmem::min_mem;
use treemem::postorder::best_postorder;
use treemem::random::reweight_paper;
use treemem::Traversal;

/// Theorem 1: for any K there is a tree on which the best postorder needs
/// more than K times the optimal memory.  We verify the ratio exceeds 2.5
/// within a few nesting levels and keeps growing.
#[test]
fn theorem_1_postorder_can_be_arbitrarily_bad() {
    let branches = 4;
    let big = 40_000;
    let mut previous = 0.0;
    for levels in 2..=5 {
        let tree = harpoon_tower(branches, big, 1, levels);
        let po = best_postorder(&tree);
        let opt = min_mem(&tree);
        let ratio = po.peak as f64 / opt.peak as f64;
        assert!(ratio > previous, "ratio must grow with the nesting level");
        previous = ratio;
    }
    assert!(
        previous > 2.4,
        "four levels of nesting already exceed a factor 2.4, got {previous}"
    );
}

/// The closed forms of Section IV-A (postorder vs optimal on the one-level
/// harpoon) hold exactly.
#[test]
fn harpoon_closed_forms() {
    for branches in [2usize, 3, 6, 10] {
        let big = 600;
        let eps = 2;
        let tree = harpoon(branches, big, eps);
        assert_eq!(
            best_postorder(&tree).peak,
            harpoon_postorder_peak(branches, big, eps)
        );
        assert_eq!(
            min_mem(&tree).peak,
            harpoon_optimal_peak(branches, big, eps)
        );
        assert_eq!(
            liu_exact(&tree).peak,
            harpoon_optimal_peak(branches, big, eps)
        );
    }
}

/// Theorem 2 (reduction from 2-Partition): on the gadget, an I/O volume of
/// exactly S/2 is achievable iff the 2-Partition instance is solvable; the
/// divisible relaxation always reaches S/2, and exhaustive subset search
/// (Best-K with k = n) reaches it exactly when a perfect split exists.
#[test]
fn theorem_2_gadget_links_io_to_two_partition() {
    // Solvable instance: {3, 5, 2, 4, 6, 4} splits into 12 + 12.
    let solvable = two_partition_gadget(&[3, 5, 2, 4, 6, 4]);
    // Unsolvable instance: {1, 1, 1, 1, 2, 6} has sum 12 but no 6 + 6 split
    // ... actually {1,1,1,1,2,6} does split (6 = 6). Use {3, 3, 3, 1, 1, 1}
    // with sum 12: a 6+6 split needs 3+3 or 3+1+1+1 = 6 — also solvable.
    // A genuinely unsolvable even-sum instance: {1, 1, 4} (sum 6, no 3+3).
    let unsolvable = two_partition_gadget(&[1, 1, 4]);

    for (gadget, solvable) in [(&solvable, true), (&unsolvable, false)] {
        let tree = &gadget.tree;
        let mut order = vec![
            tree.root(),
            gadget.big_node,
            tree.children(gadget.big_node)[0],
        ];
        for &item in &gadget.item_nodes {
            order.push(item);
            order.push(tree.children(item)[0]);
        }
        let traversal = Traversal::new(order);
        let bound = divisible_lower_bound(tree, &traversal, gadget.memory).unwrap();
        assert_eq!(bound, gadget.io_bound, "divisible bound is always S/2");
        let exhaustive = schedule_io(
            tree,
            &traversal,
            gadget.memory,
            EvictionPolicy::BestKCombination {
                k: gadget.item_nodes.len(),
            },
        )
        .unwrap();
        if solvable {
            assert_eq!(
                exhaustive.io_volume, gadget.io_bound,
                "perfect split must be found"
            );
        } else {
            assert!(
                exhaustive.io_volume > gadget.io_bound,
                "no perfect split exists"
            );
        }
    }
}

/// Section VI-C / VI-E (Tables I and II): the best postorder is optimal on
/// almost every real assembly tree, but becomes suboptimal much more often
/// once the same tree structures are randomly re-weighted; the exact
/// algorithms always agree with each other.
#[test]
fn random_weights_make_postorder_suboptimal_more_often() {
    use engine::{Engine, EngineConfig};
    use ordering::OrderingMethod;
    use sparsemat::gen::ProblemKind;

    let engine = Engine::new();
    let mut assembly_suboptimal = 0;
    let mut random_suboptimal = 0;
    let mut trials = 0;
    for kind in [
        ProblemKind::Grid2d,
        ProblemKind::Banded,
        ProblemKind::Random,
    ] {
        for method in [
            OrderingMethod::MinimumDegree,
            OrderingMethod::NestedDissection,
        ] {
            let config = EngineConfig::generated(kind, 225, 17).with_ordering(method);
            let plan = engine.plan(&config).unwrap();
            let tree = plan.tree();
            let po = best_postorder(tree);
            let opt = min_mem(tree);
            assert_eq!(opt.peak, liu_exact(tree).peak);
            if po.peak > opt.peak {
                assembly_suboptimal += 1;
            }
            // The paper's random re-weighting of the same structures (files
            // up to N, execution up to N/500), several draws per structure.
            for seed in 0..8 {
                trials += 1;
                let random = reweight_paper(tree, seed);
                let po = best_postorder(&random);
                let opt = min_mem(&random);
                assert_eq!(opt.peak, liu_exact(&random).peak);
                if po.peak > opt.peak {
                    random_suboptimal += 1;
                }
            }
        }
    }
    // Table I vs Table II: the suboptimality *rate* jumps by an order of
    // magnitude under random weights.
    let assembly_rate = assembly_suboptimal as f64 / 6.0;
    let random_rate = random_suboptimal as f64 / trials as f64;
    assert!(
        random_rate > assembly_rate,
        "random weights must defeat the postorder more often \
         (random {random_suboptimal}/{trials} vs assembly {assembly_suboptimal}/6)"
    );
    assert!(
        random_suboptimal > 0,
        "some random instance must defeat the postorder"
    );
}

/// Heuristic sanity on the harpoon: below the postorder peak the postorder
/// traversal needs I/O, while the optimal traversal with the same memory
/// needs none — the MinMemory gain translates directly into an I/O gain.
#[test]
fn optimal_traversals_avoid_io_where_postorders_need_it() {
    let tree = harpoon(6, 6000, 5);
    let po = best_postorder(&tree);
    let opt = min_mem(&tree);
    assert!(opt.peak < po.peak);
    let memory = opt.peak;
    let po_run = schedule_io(&tree, &po.traversal, memory, EvictionPolicy::FirstFit).unwrap();
    let opt_run = schedule_io(&tree, &opt.traversal, memory, EvictionPolicy::FirstFit).unwrap();
    assert!(po_run.io_volume > 0);
    assert_eq!(opt_run.io_volume, 0);
}
