//! The workspace is dependency-free by design: it builds in an offline
//! container, every algorithmic substitute (`prng` for `rand`, scoped
//! threads for `crossbeam`, the internal microbench harness for
//! `criterion`) lives in-tree, and nothing may quietly change that.  This
//! test pins the invariant by parsing `Cargo.lock`: every `[[package]]`
//! entry must be a workspace member.  The CI `dependency-freeness` job
//! enforces the same rule without a toolchain, so a violation fails both in
//! seconds on CI and locally under tier-1.

use std::collections::BTreeSet;
use std::path::Path;

/// Every crate of the workspace, plus the root package.
const WORKSPACE_PACKAGES: [&str; 14] = [
    "bench",
    "conformance",
    "distrib",
    "engine",
    "minio",
    "multifrontal",
    "ordering",
    "perfprof",
    "prng",
    "server",
    "sparsemat",
    "symbolic",
    "treemem",
    "treemem-repro",
];

fn locked_package_names() -> BTreeSet<String> {
    let lock_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.lock");
    let contents = std::fs::read_to_string(&lock_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", lock_path.display()));
    contents
        .lines()
        .filter_map(|line| line.strip_prefix("name = \""))
        .filter_map(|rest| rest.strip_suffix('"'))
        .map(str::to_string)
        .collect()
}

#[test]
fn cargo_lock_contains_only_workspace_packages() {
    let locked = locked_package_names();
    let expected: BTreeSet<String> = WORKSPACE_PACKAGES.iter().map(|s| s.to_string()).collect();
    let foreign: Vec<&String> = locked.difference(&expected).collect();
    assert!(
        foreign.is_empty(),
        "Cargo.lock lists non-workspace packages {foreign:?}; the workspace is \
         dependency-free by design — implement or stub the functionality in-tree \
         instead of adding a dependency"
    );
    let missing: Vec<&String> = expected.difference(&locked).collect();
    assert!(
        missing.is_empty(),
        "workspace members {missing:?} are missing from Cargo.lock; \
         regenerate the lockfile and update WORKSPACE_PACKAGES if a crate was \
         added or renamed (and update the CI dependency-freeness job's list)"
    );
}

#[test]
fn locked_packages_declare_no_external_dependencies() {
    // A second, stricter angle: every `dependencies = [...]` entry of the
    // lockfile must itself name a workspace package.
    let lock_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.lock");
    let contents = std::fs::read_to_string(lock_path).expect("Cargo.lock is readable");
    let expected: BTreeSet<&str> = WORKSPACE_PACKAGES.into_iter().collect();
    for line in contents.lines() {
        let trimmed = line.trim();
        // Dependency list entries look like ` "name",` (no version suffix
        // for in-workspace path dependencies).
        let Some(name) = trimmed
            .strip_prefix('"')
            .and_then(|rest| rest.strip_suffix("\",").or_else(|| rest.strip_suffix('"')))
        else {
            continue;
        };
        // External dependencies are recorded as "name version"; workspace
        // path dependencies as just "name".
        let package = name.split(' ').next().unwrap_or(name);
        assert!(
            expected.contains(package),
            "Cargo.lock records a dependency on {name:?}, which is not a \
             workspace package"
        );
    }
}
