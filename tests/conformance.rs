//! Tier-1 mirror of the `exp_conformance` binary: the workspace must scan
//! clean, and every rule must still catch its seeded corpus violations (a
//! rule that goes blind is itself a regression).  CI's `conformance` job
//! runs the binary for fast standalone feedback; this test pins the same
//! two checks into `cargo test` so a violation cannot land even when CI is
//! skipped.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn the_workspace_scans_clean() {
    let violations = conformance::scan_workspace(workspace_root()).expect("workspace scan runs");
    assert!(
        violations.is_empty(),
        "conformance violations:\n{}",
        violations
            .iter()
            .map(conformance::Violation::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_catches_its_seeded_corpus() {
    let report = conformance::run_self_test(workspace_root());
    assert!(
        report.passed(),
        "conformance self-test failures:\n{}",
        report.failures.join("\n")
    );
    for (rule, expected) in &report.expected_per_rule {
        assert!(
            *expected > 0,
            "rule `{rule}` has no seeded corpus violation — it could go \
             blind without anyone noticing; add a fixture under \
             crates/conformance/corpus/"
        );
    }
}
