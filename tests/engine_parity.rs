//! Golden parity: the engine's plan → schedule → execute flow must reproduce
//! the manually stitched pipeline bit for bit, and batched execution must be
//! independent of the worker count.

use engine::prelude::*;
use minio::{divisible_lower_bound, schedule_io_with, PolicyRegistry};
use ordering::OrderingMethod;
use sparsemat::gen::ProblemKind;
use symbolic::assembly_tree_for;
use treemem::minmem::min_mem;

/// For every `ProblemKind × OrderingMethod` cell, the engine reproduces the
/// hand-stitched pipeline exactly: same tree, same traversal, same peak,
/// same I/O volume and same divisible bound.
#[test]
fn engine_reproduces_the_manual_pipeline_bit_for_bit() {
    let engine = Engine::new();
    let policies = PolicyRegistry::with_builtin();
    let (nodes, seed, allowance, fraction) = (150usize, 3u64, 4usize, 0.25f64);
    for kind in ProblemKind::ALL {
        for method in OrderingMethod::ALL {
            let context = format!("{} / {}", kind.name(), method.name());

            // The manual pipeline, stitched by hand as before the facade.
            let pattern = kind.generate(nodes, seed);
            let assembly = assembly_tree_for(&pattern, method, allowance);
            let tree = &assembly.tree;
            let optimal = min_mem(tree);
            let lower = tree.max_mem_req();
            let memory =
                lower + (((optimal.peak - lower) as f64) * fraction).round() as treemem::tree::Size;
            let policy = policies.get("FirstFit").expect("built-in policy");
            let manual_run = schedule_io_with(tree, &optimal.traversal, memory, policy).unwrap();
            let manual_bound = divisible_lower_bound(tree, &optimal.traversal, memory).unwrap();

            // The same cell through the engine.
            let config = EngineConfig::generated(kind, nodes, seed)
                .with_ordering(method)
                .with_amalgamation(allowance)
                .with_solver("minmem")
                .with_policy("FirstFit")
                .with_memory(MemoryBudget::FractionOfPeak(fraction));
            let plan = engine.plan(&config).unwrap();
            assert_eq!(plan.tree(), tree, "{context}: tree");
            let schedule = plan.schedule(&engine).unwrap();
            assert_eq!(
                schedule.traversal(),
                &optimal.traversal,
                "{context}: traversal"
            );
            assert_eq!(schedule.peak(), optimal.peak, "{context}: peak");
            assert_eq!(schedule.memory_budget(), memory, "{context}: budget");
            assert_eq!(
                schedule.io_volume(),
                manual_run.io_volume,
                "{context}: io volume"
            );
            assert_eq!(
                schedule.io_run().schedule,
                manual_run.schedule,
                "{context}: eviction schedule"
            );
            assert_eq!(
                schedule.divisible_bound(),
                manual_bound,
                "{context}: divisible bound"
            );

            // The report carries the same numbers.
            let report = schedule.execute(&engine).unwrap();
            assert_eq!(report.io_volume, manual_run.io_volume, "{context}");
            assert_eq!(report.solver_peak, optimal.peak, "{context}");
            assert_eq!(report.traversal, optimal.traversal.order(), "{context}");
            assert_eq!(report.nodes, tree.len(), "{context}");
        }
    }
}

/// `run_batch` output is independent of the worker count: one worker and
/// many workers produce identical results (modulo wall-clock timings), in
/// input order.
#[test]
fn batch_results_are_independent_of_the_worker_count() {
    let engine = Engine::new();
    let mut configs = Vec::new();
    for kind in [
        ProblemKind::Grid2d,
        ProblemKind::Banded,
        ProblemKind::Random,
    ] {
        for fraction in [0.0, 0.5] {
            configs.push(
                EngineConfig::generated(kind, 120, 11)
                    .with_policy("BestFill")
                    .with_memory(MemoryBudget::FractionOfPeak(fraction)),
            );
        }
    }
    let serial = engine.run_batch(&configs, Some(1));
    let parallel = engine.run_batch(&configs, Some(4));
    assert_eq!(serial.len(), configs.len());
    for ((a, b), config) in serial.iter().zip(&parallel).zip(&configs) {
        let a = a.as_ref().expect("batch cell succeeds");
        let b = b.as_ref().expect("batch cell succeeds");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.config_hash, config.hash(), "results stay in input order");
    }
}

/// The facade validates early: a batch with a bad cell reports the error in
/// that cell's slot without poisoning the others.
#[test]
fn batch_errors_stay_in_their_cell() {
    let engine = Engine::new();
    let configs = vec![
        EngineConfig::generated(ProblemKind::Grid2d, 100, 1),
        EngineConfig::generated(ProblemKind::Grid2d, 100, 1).with_solver("nope"),
    ];
    let results = engine.run_batch(&configs, Some(2));
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(EngineError::UnknownName(_))));
}
