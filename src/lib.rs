//! Workspace root crate.
//!
//! This crate re-exports the workspace members so the examples in
//! `examples/` and the integration tests in `tests/` can exercise the whole
//! stack through a single dependency.  The recommended entry point is the
//! [`engine`] facade (also re-exported as [`prelude`]), which drives the
//! whole matrix-to-traversal pipeline through one typed
//! plan → schedule → execute flow.  The underlying functionality lives in
//! the member crates:
//!
//! * [`engine`] — the unified `EngineConfig` → `Plan` → `Schedule` →
//!   `Report` facade over everything below.
//! * [`treemem`] — the paper's tree-traversal model and MinMemory algorithms.
//! * [`minio`] — out-of-core scheduling heuristics (MinIO).
//! * [`sparsemat`], [`ordering`], [`symbolic`] — the sparse-matrix substrate
//!   that produces assembly trees.
//! * [`perfprof`] — Dolan–Moré performance profiles.
//! * [`multifrontal`] — traversal-driven multifrontal Cholesky simulator.

pub use engine;
pub use engine::prelude;
pub use minio;
pub use multifrontal;
pub use ordering;
pub use perfprof;
pub use sparsemat;
pub use symbolic;
pub use treemem;
