//! Workspace root crate.
//!
//! This crate re-exports the workspace members so the examples in
//! `examples/` and the integration tests in `tests/` can exercise the whole
//! stack through a single dependency.  The actual functionality lives in the
//! member crates:
//!
//! * [`treemem`] — the paper's tree-traversal model and MinMemory algorithms.
//! * [`minio`] — out-of-core scheduling heuristics (MinIO).
//! * [`sparsemat`], [`ordering`], [`symbolic`] — the sparse-matrix substrate
//!   that produces assembly trees.
//! * [`perfprof`] — Dolan–Moré performance profiles.
//! * [`multifrontal`] — traversal-driven multifrontal Cholesky simulator.

pub use minio;
pub use multifrontal;
pub use ordering;
pub use perfprof;
pub use sparsemat;
pub use symbolic;
pub use treemem;
